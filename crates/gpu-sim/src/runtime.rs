//! The per-context CUDA runtime.
//!
//! A [`GpuRuntime`] is what one MPI rank (one process in the paper's world)
//! sees of the GPU: the `cuda*` runtime API. It owns the context-local state
//! — streams, events, the launch-configuration stack used by the
//! `cudaConfigureCall` / `cudaSetupArgument` / `cudaLaunch` trio — and
//! advances its host's virtual clock by modeled durations.
//!
//! ## Timing semantics (the behaviors IPM observes)
//!
//! * **Kernel launches are asynchronous** (paper §III): the launch returns
//!   after a few µs of submission overhead while the kernel is scheduled on
//!   the stream's device timeline. With `launch_blocking`
//!   (`CUDA_LAUNCH_BLOCKING=1`) the host instead waits for completion.
//! * **Synchronous memory operations block implicitly** (paper §III-C):
//!   a sync `cudaMemcpy` first waits for all outstanding device work
//!   (legacy default-stream semantics), then pays the transfer time. This
//!   is the *implicit host blocking* that IPM's `@CUDA_HOST_IDLE` metric
//!   quantifies.
//! * **`cudaMemset` is the exception**: the paper's microbenchmark found it
//!   does *not* block implicitly; we enqueue it on the device timeline and
//!   return after API overhead.
//! * **Events timestamp on-device**: `cudaEventRecord` enqueues a small
//!   operation (2–15 µs) whose completion time becomes the event timestamp;
//!   bracketing a kernel with events therefore over-reports by roughly one
//!   record overhead — exactly the bias Table I shows for IPM.
//! * **The first API call is expensive**: context creation (~1.3 s on
//!   Dirac) is charged lazily, surfacing in whichever call comes first
//!   (`cudaMalloc` in Fig. 4, `cudaGetDeviceCount` in the Amber profile).

use crate::config::GpuConfig;
use crate::counters::CounterStore;
use crate::device::{Device, DeviceProperties, EventId, StreamId};
use crate::error::{CudaError, CudaResult};
use crate::kernel::{Kernel, KernelArg, KernelCtx, LaunchConfig};
use crate::memory::DevicePtr;
use crate::profiler::{ProfKind, ProfRecord, Profiler};
use ipm_sim_core::{SimClock, SimRng};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum threads per block on compute capability 2.0.
const MAX_THREADS_PER_BLOCK: u64 = 1024;

/// Process-global correlation-id source (the CUPTI `correlationId`
/// analogue). Globally unique even when several contexts share one device,
/// so a merged multi-rank trace never aliases two launches.
static NEXT_CORRELATION: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Correlation id of the most recent kernel enqueued *by this thread*.
    /// Ranks are one-thread-per-process in the simulation, so this is the
    /// per-process "last launch" an interposition layer asks about.
    static LAST_LAUNCH_CORR: Cell<u64> = const { Cell::new(0) };
}

/// Correlation id assigned to the calling thread's most recent kernel
/// launch (0 if this thread has not launched a kernel yet).
pub fn last_launch_correlation_id() -> u64 {
    LAST_LAUNCH_CORR.with(Cell::get)
}

#[derive(Debug, Clone, Copy)]
struct StreamState {
    /// Device time at which the last operation enqueued on this stream
    /// completes.
    last_end: f64,
}

#[derive(Debug, Clone, Copy)]
struct EventState {
    /// Device timestamp at which the recorded event completes; `None` until
    /// the first `cudaEventRecord`.
    recorded_at: Option<f64>,
}

#[derive(Debug)]
struct PendingLaunch {
    config: LaunchConfig,
    args: Vec<KernelArg>,
}

struct Inner {
    initialized: bool,
    streams: HashMap<StreamId, StreamState>,
    next_stream: u32,
    events: HashMap<EventId, EventState>,
    next_event: u64,
    launch_stack: Vec<PendingLaunch>,
    /// Completion times (f64 bits) of kernels admitted to the in-context
    /// concurrency window, used to enforce the 16-concurrent-kernel limit.
    active_kernel_ends: Vec<u64>,
    rng: SimRng,
    profiler: Profiler,
    counters: CounterStore,
    last_error: Option<CudaError>,
    device_ordinal: i32,
}

/// One context's view of a simulated GPU: the `cuda*` runtime API.
pub struct GpuRuntime {
    device: Arc<Device>,
    clock: SimClock,
    inner: Mutex<Inner>,
}

impl GpuRuntime {
    /// Attach a new context to `device`, driven by the host clock `clock`
    /// (typically the owning rank's clock).
    pub fn new(device: Arc<Device>, clock: SimClock) -> Self {
        let cfg = device.config();
        let mut streams = HashMap::new();
        streams.insert(StreamId::DEFAULT, StreamState { last_end: 0.0 });
        let inner = Inner {
            initialized: false,
            streams,
            next_stream: 1,
            events: HashMap::new(),
            next_event: 1,
            launch_stack: Vec::new(),
            active_kernel_ends: Vec::new(),
            rng: SimRng::new(cfg.seed).fork(0xCDA),
            profiler: Profiler::new(cfg.profile),
            counters: CounterStore::new(cfg.counters),
            last_error: None,
            device_ordinal: 0,
        };
        Self {
            device,
            clock,
            inner: Mutex::new(inner),
        }
    }

    /// Convenience: a fresh single-context runtime over a new device.
    pub fn single(config: GpuConfig) -> Self {
        let clock = SimClock::new();
        Self::new(Device::new(config), clock)
    }

    /// The host virtual clock this runtime advances.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The underlying shared device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Snapshot of the ground-truth profiler records (empty unless the
    /// config enabled profiling).
    pub fn profiler_records(&self) -> Vec<ProfRecord> {
        self.inner.lock().profiler.records().to_vec()
    }

    /// Render the `CUDA_PROFILE`-style log.
    pub fn profiler_log(&self) -> String {
        self.inner.lock().profiler.render_log()
    }

    /// Run `f` over the profiler (read-only helpers like totals).
    pub fn with_profiler<R>(&self, f: impl FnOnce(&Profiler) -> R) -> R {
        f(&self.inner.lock().profiler)
    }

    /// Snapshot of the per-kernel hardware counters (empty unless the
    /// config enabled them).
    pub fn counters(&self) -> CounterStore {
        self.inner.lock().counters.clone()
    }

    fn cfg(&self) -> &GpuConfig {
        self.device.config()
    }

    /// Charge lazy context initialization on the first API call.
    fn ensure_init(&self, inner: &mut Inner) {
        if !inner.initialized {
            inner.initialized = true;
            self.device.attach_context();
            self.clock.advance(self.cfg().context_init);
        }
    }

    /// Device time at which *all* outstanding work of this context is done
    /// (the legacy default-stream synchronization point).
    fn sync_point(inner: &Inner) -> f64 {
        inner
            .streams
            .values()
            .map(|s| s.last_end)
            .fold(0.0, f64::max)
    }

    fn record_err(&self, inner: &mut Inner, e: CudaError) -> CudaError {
        inner.last_error = Some(e);
        e
    }

    /// Admit a kernel to the in-context concurrency window. Returns the
    /// earliest start not violating the device's concurrent-kernel limit.
    fn admit_kernel(inner: &mut Inner, proposed: f64, limit: usize) -> f64 {
        // retire kernels finished by `proposed`
        inner
            .active_kernel_ends
            .retain(|&bits| f64::from_bits(bits) > proposed);
        if inner.active_kernel_ends.len() < limit {
            return proposed;
        }
        // wait for the earliest-finishing active kernel
        let (idx, &bits) = inner
            .active_kernel_ends
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| b)
            .expect("window is non-empty");
        inner.active_kernel_ends.swap_remove(idx);
        proposed.max(f64::from_bits(bits))
    }

    fn enqueue_kernel(
        &self,
        inner: &mut Inner,
        kernel: &Kernel,
        config: LaunchConfig,
        args: &[KernelArg],
    ) -> CudaResult<()> {
        if config.block.count() > MAX_THREADS_PER_BLOCK
            || config.grid.count() == 0
            || config.block.count() == 0
        {
            return Err(self.record_err(inner, CudaError::InvalidConfiguration));
        }
        if !inner.streams.contains_key(&config.stream) {
            return Err(self.record_err(inner, CudaError::InvalidResourceHandle));
        }
        let cfg = self.cfg();
        let now = self.clock.now();
        let mut proposed = now.max(inner.streams[&config.stream].last_end);
        if config.stream == StreamId::DEFAULT {
            // legacy default stream serializes against all other streams
            proposed = proposed.max(Self::sync_point(inner));
        }
        proposed = Self::admit_kernel(inner, proposed, cfg.max_concurrent_kernels);

        let base = kernel.duration(&config, &cfg.compute);
        let duration = {
            let d = cfg.noise.perturb_event(base, &mut inner.rng);
            d.max(cfg.compute.kernel_overhead)
        };
        let start = self.device.reserve_compute(proposed, duration);
        let end = start + duration;
        inner
            .streams
            .get_mut(&config.stream)
            .expect("checked")
            .last_end = end;
        inner.active_kernel_ends.push(end.to_bits());

        let corr = NEXT_CORRELATION.fetch_add(1, Ordering::Relaxed);
        LAST_LAUNCH_CORR.with(|c| c.set(corr));
        inner.profiler.record(ProfRecord {
            method: kernel.name().to_owned(),
            kind: ProfKind::Kernel,
            stream: config.stream,
            start,
            gputime: duration,
            cputime: cfg.launch_overhead,
            corr,
        });
        if inner.counters.enabled() {
            let threads = config.total_threads();
            let (flops, bytes) = match kernel.cost() {
                crate::kernel::KernelCost::Roofline {
                    flops_per_thread,
                    bytes_per_thread,
                    ..
                } => (
                    flops_per_thread * threads as f64,
                    bytes_per_thread * threads as f64,
                ),
                // fixed-cost kernels carry no arithmetic model
                crate::kernel::KernelCost::Fixed(_) => (0.0, 0.0),
            };
            inner
                .counters
                .record(kernel.name(), flops, bytes, threads, duration);
        }

        // Apply the kernel's semantic effect eagerly: program order on this
        // context guarantees no host observation before a synchronizing op.
        if let Some(effect) = kernel.effect() {
            let effect = effect.clone();
            self.device.with_heap(|heap| {
                let mut ctx = KernelCtx { config, args, heap };
                effect(&mut ctx);
            });
        }

        self.clock.advance(cfg.launch_overhead);
        if cfg.launch_blocking {
            self.clock.advance_to(end);
        }
        Ok(())
    }

    /// Shared path for the three synchronous copy flavors: wait for
    /// outstanding device work (implicit blocking), pay the transfer, then
    /// occupy the default stream until done.
    fn sync_transfer(
        &self,
        inner: &mut Inner,
        bytes: u64,
        kind: ProfKind,
        method: &str,
    ) -> (f64, f64) {
        let cfg = self.cfg();
        self.clock.advance(cfg.api_overhead);
        let host_before = self.clock.now();
        // implicit host blocking: wait for every outstanding device op
        self.clock.advance_to(Self::sync_point(inner));
        let model = match kind {
            ProfKind::MemcpyH2D | ProfKind::MemcpyToSymbol => &cfg.h2d,
            ProfKind::MemcpyD2H => &cfg.d2h,
            ProfKind::MemcpyD2D | ProfKind::Memset => &cfg.d2d,
            ProfKind::Kernel => unreachable!("kernels do not use sync_transfer"),
        };
        let duration = cfg
            .noise
            .perturb_event(model.time(bytes), &mut inner.rng)
            .max(0.0);
        let start = self.clock.now();
        let end = self.clock.advance(duration);
        inner
            .streams
            .get_mut(&StreamId::DEFAULT)
            .expect("default stream")
            .last_end = end;
        inner.profiler.record(ProfRecord {
            method: method.to_owned(),
            kind,
            stream: StreamId::DEFAULT,
            start,
            gputime: duration,
            cputime: end - host_before,
            corr: 0,
        });
        (start, end)
    }

    // ----------------------------------------------------------------
    // Memory management
    // ----------------------------------------------------------------

    /// `cudaMalloc`.
    pub fn malloc(&self, size: usize) -> CudaResult<DevicePtr> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().alloc_overhead);
        self.device
            .with_heap(|h| h.malloc(size))
            .map_err(|e| self.record_err(&mut inner, e))
    }

    /// `cudaFree`.
    pub fn free(&self, ptr: DevicePtr) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().alloc_overhead);
        self.device
            .with_heap(|h| h.free(ptr))
            .map_err(|e| self.record_err(&mut inner, e))
    }

    /// Synchronous `cudaMemcpy(..., cudaMemcpyHostToDevice)`.
    pub fn memcpy_h2d(&self, dst: DevicePtr, src: &[u8]) -> CudaResult<()> {
        self.memcpy_h2d_sized(dst, src, src.len() as u64)
    }

    /// Synchronous H2D copy whose *virtual* size is `total_bytes` while
    /// only `src` (a prefix) is physically written. The scale adapter for
    /// paper-size workloads; `total_bytes >= src.len()` is required. The
    /// destination allocation must hold the full `total_bytes`.
    pub fn memcpy_h2d_sized(&self, dst: DevicePtr, src: &[u8], total_bytes: u64) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        if (src.len() as u64) > total_bytes {
            return Err(self.record_err(&mut inner, CudaError::InvalidValue));
        }
        let logical = self
            .device
            .with_heap(|h| h.remaining_len(dst))
            .map_err(|e| self.record_err(&mut inner, e))?;
        if (logical as u64) < total_bytes {
            return Err(self.record_err(&mut inner, CudaError::InvalidValue));
        }
        self.device
            .with_heap(|h| h.write(dst, src))
            .map_err(|e| self.record_err(&mut inner, e))?;
        self.sync_transfer(&mut inner, total_bytes, ProfKind::MemcpyH2D, "memcpyHtoD");
        Ok(())
    }

    /// Synchronous `cudaMemcpy(..., cudaMemcpyDeviceToHost)`.
    pub fn memcpy_d2h(&self, dst: &mut [u8], src: DevicePtr) -> CudaResult<()> {
        let total = dst.len() as u64;
        self.memcpy_d2h_sized(dst, src, total)
    }

    /// Synchronous D2H copy whose *virtual* size is `total_bytes` while
    /// only `dst` (a prefix) is physically read back.
    pub fn memcpy_d2h_sized(
        &self,
        dst: &mut [u8],
        src: DevicePtr,
        total_bytes: u64,
    ) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        if (dst.len() as u64) > total_bytes {
            return Err(self.record_err(&mut inner, CudaError::InvalidValue));
        }
        let logical = self
            .device
            .with_heap(|h| h.remaining_len(src))
            .map_err(|e| self.record_err(&mut inner, e))?;
        if (logical as u64) < total_bytes {
            return Err(self.record_err(&mut inner, CudaError::InvalidValue));
        }
        // wait + transfer first: the data host-side becomes visible *after*
        // the device drained, which is also when we read the heap
        self.sync_transfer(&mut inner, total_bytes, ProfKind::MemcpyD2H, "memcpyDtoH");
        self.device
            .with_heap(|h| h.read(src, dst))
            .map_err(|e| self.record_err(&mut inner, e))
    }

    /// Synchronous device-to-device `cudaMemcpy`.
    pub fn memcpy_d2d(&self, dst: DevicePtr, src: DevicePtr, len: usize) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.device
            .with_heap(|h| h.copy(dst, src, len))
            .map_err(|e| self.record_err(&mut inner, e))?;
        self.sync_transfer(&mut inner, len as u64, ProfKind::MemcpyD2D, "memcpyDtoD");
        Ok(())
    }

    /// `cudaMemcpyToSymbol` (synchronous, implicit blocking — it is in the
    /// paper's identified blocking set).
    pub fn memcpy_to_symbol(&self, symbol: &str, src: &[u8]) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        let ptr = self
            .device
            .symbol(symbol, src.len())
            .map_err(|e| self.record_err(&mut inner, e))?;
        self.device
            .with_heap(|h| h.write(ptr, src))
            .map_err(|e| self.record_err(&mut inner, e))?;
        self.sync_transfer(
            &mut inner,
            src.len() as u64,
            ProfKind::MemcpyToSymbol,
            "memcpyToSymbol",
        );
        Ok(())
    }

    /// Asynchronous `cudaMemcpyAsync` host→device on `stream` (pinned-rate).
    pub fn memcpy_h2d_async(&self, dst: DevicePtr, src: &[u8], stream: StreamId) -> CudaResult<()> {
        self.async_transfer(
            src.len() as u64,
            stream,
            ProfKind::MemcpyH2D,
            "memcpyHtoDasync",
            |dev| dev.with_heap(|h| h.write(dst, src)),
        )
    }

    /// Asynchronous `cudaMemcpyAsync` device→host on `stream` (pinned-rate).
    ///
    /// Data lands in `dst` immediately (Rust cannot defer the write), but
    /// virtual time treats the copy as completing on the stream; call
    /// [`GpuRuntime::stream_synchronize`] before trusting *timing*.
    pub fn memcpy_d2h_async(
        &self,
        dst: &mut [u8],
        src: DevicePtr,
        stream: StreamId,
    ) -> CudaResult<()> {
        self.async_transfer(
            dst.len() as u64,
            stream,
            ProfKind::MemcpyD2H,
            "memcpyDtoHasync",
            |dev| dev.with_heap(|h| h.read(src, dst)),
        )
    }

    fn async_transfer(
        &self,
        bytes: u64,
        stream: StreamId,
        kind: ProfKind,
        method: &str,
        apply: impl FnOnce(&Device) -> CudaResult<()>,
    ) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        let cfg = self.cfg();
        if !inner.streams.contains_key(&stream) {
            return Err(self.record_err(&mut inner, CudaError::InvalidResourceHandle));
        }
        apply(&self.device).map_err(|e| self.record_err(&mut inner, e))?;
        let now = self.clock.now();
        let mut start = now.max(inner.streams[&stream].last_end);
        if stream == StreamId::DEFAULT {
            start = start.max(Self::sync_point(&inner));
        }
        let duration = cfg
            .noise
            .perturb_event(cfg.pinned.time(bytes), &mut inner.rng)
            .max(0.0);
        let end = start + duration;
        inner.streams.get_mut(&stream).expect("checked").last_end = end;
        inner.profiler.record(ProfRecord {
            method: method.to_owned(),
            kind,
            stream,
            start,
            gputime: duration,
            cputime: cfg.launch_overhead,
            corr: 0,
        });
        self.clock.advance(cfg.launch_overhead);
        Ok(())
    }

    /// `cudaMemset` — notably **not** implicitly blocking (paper §III-C);
    /// enqueued on the default stream's device timeline.
    pub fn memset(&self, dst: DevicePtr, value: u8, len: usize) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        let cfg = self.cfg();
        self.device
            .with_heap(|h| h.memset(dst, value, len))
            .map_err(|e| self.record_err(&mut inner, e))?;
        let start = self.clock.now().max(Self::sync_point(&inner));
        let duration = cfg.d2d.time(len as u64);
        inner
            .streams
            .get_mut(&StreamId::DEFAULT)
            .expect("default stream")
            .last_end = start + duration;
        inner.profiler.record(ProfRecord {
            method: "memset".to_owned(),
            kind: ProfKind::Memset,
            stream: StreamId::DEFAULT,
            start,
            gputime: duration,
            cputime: cfg.api_overhead,
            corr: 0,
        });
        self.clock.advance(cfg.api_overhead);
        Ok(())
    }

    // ----------------------------------------------------------------
    // Kernel launch
    // ----------------------------------------------------------------

    /// `cudaConfigureCall`: push an execution configuration.
    pub fn configure_call(&self, config: LaunchConfig) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        inner.launch_stack.push(PendingLaunch {
            config,
            args: Vec::new(),
        });
        Ok(())
    }

    /// `cudaSetupArgument`: marshal one argument for the pending launch.
    pub fn setup_argument(&self, arg: KernelArg) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        match inner.launch_stack.last_mut() {
            Some(pending) => {
                pending.args.push(arg);
                Ok(())
            }
            None => Err(self.record_err(&mut inner, CudaError::MissingConfiguration)),
        }
    }

    /// `cudaLaunch`: launch `kernel` with the pending configuration.
    pub fn launch(&self, kernel: &Kernel) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        let pending = match inner.launch_stack.pop() {
            Some(p) => p,
            None => return Err(self.record_err(&mut inner, CudaError::MissingConfiguration)),
        };
        self.enqueue_kernel(&mut inner, kernel, pending.config, &pending.args)
    }

    // ----------------------------------------------------------------
    // Streams
    // ----------------------------------------------------------------

    /// `cudaStreamCreate`.
    pub fn stream_create(&self) -> CudaResult<StreamId> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        let id = StreamId(inner.next_stream);
        inner.next_stream += 1;
        inner.streams.insert(id, StreamState { last_end: 0.0 });
        Ok(id)
    }

    /// `cudaStreamDestroy`. The default stream cannot be destroyed.
    pub fn stream_destroy(&self, stream: StreamId) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        if stream == StreamId::DEFAULT || inner.streams.remove(&stream).is_none() {
            return Err(self.record_err(&mut inner, CudaError::InvalidResourceHandle));
        }
        Ok(())
    }

    /// `cudaStreamSynchronize`: block until `stream` drains.
    pub fn stream_synchronize(&self, stream: StreamId) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        match inner.streams.get(&stream) {
            Some(s) => {
                self.clock.advance_to(s.last_end);
                Ok(())
            }
            None => Err(self.record_err(&mut inner, CudaError::InvalidResourceHandle)),
        }
    }

    /// `cudaStreamQuery`: `Ok` if the stream has drained, `NotReady`
    /// otherwise.
    pub fn stream_query(&self, stream: StreamId) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        match inner.streams.get(&stream) {
            Some(s) if s.last_end <= self.clock.now() => Ok(()),
            Some(_) => Err(CudaError::NotReady),
            None => Err(self.record_err(&mut inner, CudaError::InvalidResourceHandle)),
        }
    }

    /// `cudaThreadSynchronize` (CUDA 3.x name; later `cudaDeviceSynchronize`):
    /// block until all outstanding work of this context completes.
    pub fn thread_synchronize(&self) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        self.clock.advance_to(Self::sync_point(&inner));
        Ok(())
    }

    // ----------------------------------------------------------------
    // Events
    // ----------------------------------------------------------------

    /// `cudaEventCreate`.
    pub fn event_create(&self) -> CudaResult<EventId> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        let id = EventId(inner.next_event);
        inner.next_event += 1;
        inner.events.insert(id, EventState { recorded_at: None });
        Ok(id)
    }

    /// `cudaEventDestroy`.
    pub fn event_destroy(&self, event: EventId) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        if inner.events.remove(&event).is_none() {
            return Err(self.record_err(&mut inner, CudaError::InvalidResourceHandle));
        }
        Ok(())
    }

    /// `cudaEventRecord`: enqueue a timestamping operation on `stream`.
    /// The record itself occupies the stream for a few microseconds — the
    /// source of IPM's slight over-reporting in Table I.
    pub fn event_record(&self, event: EventId, stream: StreamId) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        let cfg = self.cfg();
        self.clock.advance(cfg.api_overhead);
        if !inner.events.contains_key(&event) {
            return Err(self.record_err(&mut inner, CudaError::InvalidResourceHandle));
        }
        let Some(s) = inner.streams.get(&stream).copied() else {
            return Err(self.record_err(&mut inner, CudaError::InvalidResourceHandle));
        };
        let (lo, hi) = cfg.event_record_overhead;
        let overhead = inner.rng.uniform_in(lo, hi);
        let start = self.clock.now().max(s.last_end);
        let ts = start + overhead;
        inner.streams.get_mut(&stream).expect("checked").last_end = ts;
        inner.events.get_mut(&event).expect("checked").recorded_at = Some(ts);
        Ok(())
    }

    /// `cudaEventQuery`: `Ok` once the recorded event has completed on the
    /// device; `NotReady` while work is still pending. As in CUDA, querying
    /// a never-recorded event reports `Ok` (it is trivially "complete").
    pub fn event_query(&self, event: EventId) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        match inner.events.get(&event) {
            Some(EventState {
                recorded_at: Some(ts),
            }) if *ts > self.clock.now() => Err(CudaError::NotReady),
            Some(_) => Ok(()),
            None => Err(self.record_err(&mut inner, CudaError::InvalidResourceHandle)),
        }
    }

    /// `cudaEventSynchronize`: block until the event completes.
    pub fn event_synchronize(&self, event: EventId) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        match inner.events.get(&event) {
            Some(EventState {
                recorded_at: Some(ts),
            }) => {
                self.clock.advance_to(*ts);
                Ok(())
            }
            Some(_) => Err(self.record_err(&mut inner, CudaError::EventNotRecorded)),
            None => Err(self.record_err(&mut inner, CudaError::InvalidResourceHandle)),
        }
    }

    /// `cudaEventElapsedTime`, in **seconds** (the real API returns
    /// milliseconds; seconds keep this workspace single-unit).
    /// Errors with `NotReady` if either event has not completed yet.
    pub fn event_elapsed_time(&self, start: EventId, stop: EventId) -> CudaResult<f64> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        let get = |inner: &Inner, id: EventId| -> CudaResult<f64> {
            match inner.events.get(&id) {
                Some(EventState {
                    recorded_at: Some(ts),
                }) => Ok(*ts),
                Some(_) => Err(CudaError::EventNotRecorded),
                None => Err(CudaError::InvalidResourceHandle),
            }
        };
        let t0 = get(&inner, start).map_err(|e| self.record_err(&mut inner, e))?;
        let t1 = get(&inner, stop).map_err(|e| self.record_err(&mut inner, e))?;
        let now = self.clock.now();
        if t0 > now || t1 > now {
            return Err(CudaError::NotReady);
        }
        Ok(t1 - t0)
    }

    /// Absolute device completion timestamp of a recorded event (virtual
    /// seconds on the shared timeline). Not a `cuda*` entry point — this is
    /// the introspection hook trace exporters use to place event-bracketed
    /// intervals on the device timeline. Free of API overhead so probing
    /// does not perturb the run. Errors if the event was never recorded or
    /// has not completed yet.
    pub fn event_timestamp(&self, event: EventId) -> CudaResult<f64> {
        let mut inner = self.inner.lock();
        match inner.events.get(&event) {
            Some(EventState {
                recorded_at: Some(ts),
            }) if *ts <= self.clock.now() => Ok(*ts),
            Some(EventState {
                recorded_at: Some(_),
            }) => Err(CudaError::NotReady),
            Some(_) => Err(CudaError::EventNotRecorded),
            None => Err(self.record_err(&mut inner, CudaError::InvalidResourceHandle)),
        }
    }

    // ----------------------------------------------------------------
    // Device management
    // ----------------------------------------------------------------

    /// `cudaGetDeviceCount`. Triggers lazy initialization, which is why the
    /// Amber profile in the paper shows substantial time here.
    pub fn get_device_count(&self) -> CudaResult<i32> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        Ok(1)
    }

    /// `cudaSetDevice` (single-device nodes: only ordinal 0 is valid, as on
    /// Dirac).
    pub fn set_device(&self, ordinal: i32) -> CudaResult<()> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        if ordinal != 0 {
            return Err(self.record_err(&mut inner, CudaError::InvalidDevice));
        }
        inner.device_ordinal = ordinal;
        Ok(())
    }

    /// `cudaGetDeviceProperties`.
    pub fn get_device_properties(&self) -> CudaResult<DeviceProperties> {
        let mut inner = self.inner.lock();
        self.ensure_init(&mut inner);
        self.clock.advance(self.cfg().api_overhead);
        Ok(self.device.properties().clone())
    }

    /// `cudaGetLastError`: returns and clears the sticky error.
    pub fn get_last_error(&self) -> Option<CudaError> {
        let mut inner = self.inner.lock();
        self.clock.advance(self.cfg().api_overhead);
        inner.last_error.take()
    }
}

impl std::fmt::Debug for GpuRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuRuntime")
            .field("device", &self.device)
            .field("now", &self.clock.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Dim3, KernelCost};

    fn rt() -> GpuRuntime {
        // zero init cost keeps arithmetic easy in unit tests
        GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0))
    }

    fn fixed_kernel(d: f64) -> Kernel {
        Kernel::timed("k", KernelCost::Fixed(d))
    }

    fn launch(rt: &GpuRuntime, k: &Kernel, config: LaunchConfig) {
        rt.configure_call(config).unwrap();
        rt.setup_argument(KernelArg::I32(0)).unwrap();
        rt.launch(k).unwrap();
    }

    #[test]
    fn first_call_pays_context_init() {
        let rt = GpuRuntime::single(GpuConfig::dirac_node().with_context_init(1.29));
        assert_eq!(rt.clock().now(), 0.0);
        let before = rt.clock().now();
        rt.malloc(1024).unwrap();
        let first = rt.clock().now() - before;
        assert!(first >= 1.29, "first call took {first}");
        let before = rt.clock().now();
        rt.malloc(1024).unwrap();
        let second = rt.clock().now() - before;
        assert!(second < 0.001, "second call took {second}");
    }

    #[test]
    fn launch_is_asynchronous() {
        let rt = rt();
        let k = fixed_kernel(1.0);
        let before = rt.clock().now();
        launch(&rt, &k, LaunchConfig::simple(1u32, 1u32));
        let host_cost = rt.clock().now() - before;
        assert!(host_cost < 1e-3, "launch blocked the host for {host_cost}");
        rt.thread_synchronize().unwrap();
        assert!(rt.clock().now() >= before + 1.0);
    }

    #[test]
    fn launch_blocking_waits() {
        let rt = GpuRuntime::single(
            GpuConfig::dirac_node()
                .with_context_init(0.0)
                .with_launch_blocking(),
        );
        let k = fixed_kernel(0.5);
        let before = rt.clock().now();
        launch(&rt, &k, LaunchConfig::simple(1u32, 1u32));
        assert!(rt.clock().now() - before >= 0.5);
    }

    #[test]
    fn sync_d2h_blocks_on_outstanding_kernel() {
        // the Fig. 3/6 scenario: async kernel, then blocking memcpy
        let rt = rt();
        let n = 100_000usize;
        let dev = rt.malloc(n * 8).unwrap();
        let host: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let bytes: Vec<u8> = host.iter().flat_map(|v| v.to_le_bytes()).collect();
        rt.memcpy_h2d(dev, &bytes).unwrap();

        let k = Kernel::with_effect("square", KernelCost::Fixed(1.15), move |ctx| {
            let p = ctx.args[0].as_ptr().unwrap();
            let n = ctx.args[1].as_i32().unwrap() as usize;
            ctx.heap.map_f64(p, n, |_, v| v * v).unwrap();
        });
        rt.configure_call(LaunchConfig::simple(Dim3::x(n as u32), 1u32))
            .unwrap();
        rt.setup_argument(KernelArg::Ptr(dev)).unwrap();
        rt.setup_argument(KernelArg::I32(n as i32)).unwrap();
        rt.launch(&k).unwrap();

        let before = rt.clock().now();
        let mut out = vec![0u8; n * 8];
        rt.memcpy_d2h(&mut out, dev).unwrap();
        let d2h_time = rt.clock().now() - before;
        // dominated by the implicit wait for the 1.15 s kernel
        assert!(d2h_time > 1.1, "d2h took {d2h_time}");

        // and the data is really squared
        let v0 = f64::from_le_bytes(out[8 * 7..8 * 8].try_into().unwrap());
        assert_eq!(v0, 49.0);
    }

    #[test]
    fn memset_does_not_block_host() {
        let rt = rt();
        let dev = rt.malloc(1 << 20).unwrap();
        launch(&rt, &fixed_kernel(2.0), LaunchConfig::simple(1u32, 1u32));
        let before = rt.clock().now();
        rt.memset(dev, 0xFF, 1 << 20).unwrap();
        let cost = rt.clock().now() - before;
        assert!(cost < 1e-3, "memset blocked for {cost}");
    }

    #[test]
    fn event_bracketing_overreports_kernel_time_slightly() {
        let rt = rt();
        let start = rt.event_create().unwrap();
        let stop = rt.event_create().unwrap();
        rt.event_record(start, StreamId::DEFAULT).unwrap();
        launch(&rt, &fixed_kernel(0.010), LaunchConfig::simple(1u32, 1u32));
        rt.event_record(stop, StreamId::DEFAULT).unwrap();
        rt.thread_synchronize().unwrap();
        let measured = rt.event_elapsed_time(start, stop).unwrap();
        let (lo, hi) = rt.device().config().event_record_overhead;
        assert!(measured >= 0.010 + lo, "measured {measured}");
        assert!(measured <= 0.010 + hi + 1e-9, "measured {measured}");
    }

    #[test]
    fn event_query_tracks_device_progress() {
        let rt = rt();
        let ev = rt.event_create().unwrap();
        launch(&rt, &fixed_kernel(1.0), LaunchConfig::simple(1u32, 1u32));
        rt.event_record(ev, StreamId::DEFAULT).unwrap();
        assert_eq!(rt.event_query(ev).unwrap_err(), CudaError::NotReady);
        rt.thread_synchronize().unwrap();
        assert!(rt.event_query(ev).is_ok());
    }

    #[test]
    fn unrecorded_event_query_is_complete_like_cuda() {
        let rt = rt();
        let ev = rt.event_create().unwrap();
        assert!(rt.event_query(ev).is_ok());
        assert_eq!(
            rt.event_synchronize(ev).unwrap_err(),
            CudaError::EventNotRecorded
        );
    }

    #[test]
    fn elapsed_time_before_completion_is_not_ready() {
        let rt = rt();
        let (a, b) = (rt.event_create().unwrap(), rt.event_create().unwrap());
        rt.event_record(a, StreamId::DEFAULT).unwrap();
        launch(&rt, &fixed_kernel(1.0), LaunchConfig::simple(1u32, 1u32));
        rt.event_record(b, StreamId::DEFAULT).unwrap();
        assert_eq!(
            rt.event_elapsed_time(a, b).unwrap_err(),
            CudaError::NotReady
        );
    }

    #[test]
    fn streams_overlap_but_default_stream_serializes() {
        let rt = rt();
        let s1 = rt.stream_create().unwrap();
        let s2 = rt.stream_create().unwrap();
        let k = fixed_kernel(1.0);
        let t0 = rt.clock().now();
        launch(&rt, &k, LaunchConfig::simple(1u32, 1u32).on_stream(s1));
        launch(&rt, &k, LaunchConfig::simple(1u32, 1u32).on_stream(s2));
        rt.thread_synchronize().unwrap();
        let overlapped = rt.clock().now() - t0;
        assert!(overlapped < 1.5, "streams did not overlap: {overlapped}");

        // same two kernels via the default stream serialize
        let t1 = rt.clock().now();
        launch(&rt, &k, LaunchConfig::simple(1u32, 1u32));
        launch(&rt, &k, LaunchConfig::simple(1u32, 1u32));
        rt.thread_synchronize().unwrap();
        let serialized = rt.clock().now() - t1;
        assert!(serialized >= 2.0, "default stream overlapped: {serialized}");
    }

    #[test]
    fn concurrent_kernel_limit_enforced() {
        let rt = rt();
        // 20 streams, each a 1 s kernel; limit is 16 → two waves → ~2 s
        let streams: Vec<_> = (0..20).map(|_| rt.stream_create().unwrap()).collect();
        let k = fixed_kernel(1.0);
        let t0 = rt.clock().now();
        for s in &streams {
            launch(&rt, &k, LaunchConfig::simple(1u32, 1u32).on_stream(*s));
        }
        rt.thread_synchronize().unwrap();
        let took = rt.clock().now() - t0;
        assert!(took >= 2.0, "limit not enforced: {took}");
        assert!(took < 3.0, "over-serialized: {took}");
    }

    #[test]
    fn launch_without_configuration_fails() {
        let rt = rt();
        let k = fixed_kernel(0.1);
        assert_eq!(rt.launch(&k).unwrap_err(), CudaError::MissingConfiguration);
        assert_eq!(rt.get_last_error(), Some(CudaError::MissingConfiguration));
        assert_eq!(rt.get_last_error(), None); // sticky error cleared
    }

    #[test]
    fn invalid_configuration_rejected() {
        let rt = rt();
        let k = fixed_kernel(0.1);
        rt.configure_call(LaunchConfig::simple(1u32, 2048u32))
            .unwrap();
        assert_eq!(rt.launch(&k).unwrap_err(), CudaError::InvalidConfiguration);
    }

    #[test]
    fn destroyed_stream_is_invalid() {
        let rt = rt();
        let s = rt.stream_create().unwrap();
        rt.stream_destroy(s).unwrap();
        assert_eq!(
            rt.stream_synchronize(s).unwrap_err(),
            CudaError::InvalidResourceHandle
        );
        assert_eq!(
            rt.stream_destroy(StreamId::DEFAULT).unwrap_err(),
            CudaError::InvalidResourceHandle
        );
    }

    #[test]
    fn memcpy_to_symbol_roundtrip() {
        let rt = rt();
        rt.memcpy_to_symbol("c_params", &[1, 2, 3, 4]).unwrap();
        let ptr = rt.device().symbol("c_params", 4).unwrap();
        let mut out = [0u8; 4];
        rt.device().with_heap(|h| h.read(ptr, &mut out)).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn profiler_captures_true_kernel_time() {
        let rt = GpuRuntime::single(
            GpuConfig::dirac_node()
                .with_context_init(0.0)
                .with_profiler(),
        );
        let k = fixed_kernel(0.25);
        launch(&rt, &k, LaunchConfig::simple(1u32, 1u32));
        launch(&rt, &k, LaunchConfig::simple(1u32, 1u32));
        rt.thread_synchronize().unwrap();
        assert!((rt.with_profiler(|p| p.kernel_time_total("k")) - 0.5).abs() < 1e-9);
        assert_eq!(rt.with_profiler(|p| p.kernel_invocations("k")), 2);
    }

    #[test]
    fn stream_query_reports_progress() {
        let rt = rt();
        let s = rt.stream_create().unwrap();
        launch(
            &rt,
            &fixed_kernel(1.0),
            LaunchConfig::simple(1u32, 1u32).on_stream(s),
        );
        assert_eq!(rt.stream_query(s).unwrap_err(), CudaError::NotReady);
        rt.stream_synchronize(s).unwrap();
        assert!(rt.stream_query(s).is_ok());
    }

    #[test]
    fn device_management_calls() {
        let rt = rt();
        assert_eq!(rt.get_device_count().unwrap(), 1);
        rt.set_device(0).unwrap();
        assert_eq!(rt.set_device(3).unwrap_err(), CudaError::InvalidDevice);
        assert_eq!(rt.get_device_properties().unwrap().name, "Tesla C2050");
    }
}
