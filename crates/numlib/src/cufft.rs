//! The CUFFT-like accelerated FFT library.
//!
//! Mirrors the CUFFT plan/execute model shipped with CUDA 3.1 (13 entry
//! points — paper §III-D): plans are created for a size and type, bound to
//! an optional stream, and executed over device pointers. Like
//! [`crate::cublas`], every internal operation goes through the
//! interposable [`CudaApi`] seam, so IPM sees the library's kernels.

use crate::complex::{as_f64s, from_f64s};
use crate::fftkernels::{self, FftDirection};
use ipm_gpu_sim::{
    launch_kernel, CudaApi, CudaError, CudaResult, DevicePtr, Dim3, Kernel, KernelArg, KernelCost,
    LaunchConfig, StreamId,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Transform type, as in `cufftType`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FftType {
    /// Complex-to-complex, double precision (`CUFFT_Z2Z`).
    Z2Z,
    /// Complex-to-complex, single precision (`CUFFT_C2C`) — same simulated
    /// cost model, half the bytes.
    C2C,
}

/// An opaque plan handle (`cufftHandle`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanId(u64);

#[derive(Clone, Copy, Debug)]
struct Plan {
    n: usize,
    batch: usize,
    ty: FftType,
    stream: StreamId,
}

/// Configuration of the device FFT.
#[derive(Clone, Copy, Debug)]
pub struct CufftConfig {
    /// Fraction of the device roofline FFT kernels achieve.
    pub efficiency: f64,
    /// Above this many flops, execution is timing-only.
    pub exact_flops_limit: f64,
}

impl Default for CufftConfig {
    fn default() -> Self {
        Self {
            efficiency: 0.25,
            exact_flops_limit: 5.0e7,
        }
    }
}

/// The CUFFT library state for one context.
pub struct CufftContext {
    api: Arc<dyn CudaApi>,
    cfg: CufftConfig,
    plans: Mutex<HashMap<PlanId, Plan>>,
    next: Mutex<u64>,
}

impl CufftContext {
    /// Create the library context over an interposable CUDA API.
    pub fn new(api: Arc<dyn CudaApi>, cfg: CufftConfig) -> Self {
        Self {
            api,
            cfg,
            plans: Mutex::new(HashMap::new()),
            next: Mutex::new(1),
        }
    }

    /// `cufftPlan1d`: a batched 1-D plan. `n` must be a power of two (the
    /// simulator implements the radix-2 path).
    pub fn plan_1d(&self, n: usize, ty: FftType, batch: usize) -> CudaResult<PlanId> {
        if !n.is_power_of_two() || n == 0 || batch == 0 {
            return Err(CudaError::InvalidValue);
        }
        let mut next = self.next.lock();
        let id = PlanId(*next);
        *next += 1;
        self.plans.lock().insert(
            id,
            Plan {
                n,
                batch,
                ty,
                stream: StreamId::DEFAULT,
            },
        );
        Ok(id)
    }

    /// `cufftSetStream`.
    pub fn set_stream(&self, plan: PlanId, stream: StreamId) -> CudaResult<()> {
        match self.plans.lock().get_mut(&plan) {
            Some(p) => {
                p.stream = stream;
                Ok(())
            }
            None => Err(CudaError::InvalidResourceHandle),
        }
    }

    /// `cufftDestroy`.
    pub fn destroy(&self, plan: PlanId) -> CudaResult<()> {
        match self.plans.lock().remove(&plan) {
            Some(_) => Ok(()),
            None => Err(CudaError::InvalidResourceHandle),
        }
    }

    /// `cufftExecZ2Z`: batched in-place-or-not complex transform over
    /// device pointers. `idata` and `odata` may be equal (in-place).
    pub fn exec_z2z(
        &self,
        plan: PlanId,
        idata: DevicePtr,
        odata: DevicePtr,
        dir: FftDirection,
    ) -> CudaResult<()> {
        let p = *self
            .plans
            .lock()
            .get(&plan)
            .ok_or(CudaError::InvalidResourceHandle)?;
        if p.ty != FftType::Z2Z {
            return Err(CudaError::InvalidValue);
        }
        let flops = fftkernels::fft_flops(p.n) * p.batch as f64;
        let elem = 16.0;
        let bytes = 2.0 * p.n as f64 * p.batch as f64 * elem; // read + write
        let duration = ipm_sim_core::model::GpuComputeModel::tesla_c2050().kernel_time(
            flops,
            bytes,
            self.cfg.efficiency,
        );
        let name = format!("dpRadix{:04}B_kernel", p.n.min(1024));
        let kernel = if flops <= self.cfg.exact_flops_limit {
            let (n, batch) = (p.n, p.batch);
            Kernel::with_effect(&name, KernelCost::Fixed(duration), move |ctx| {
                let heap = &mut *ctx.heap;
                let mut raw = vec![0.0f64; 2 * n * batch];
                heap.read_f64(idata, &mut raw).expect("cufft input");
                let mut data = from_f64s(&raw);
                for b in 0..batch {
                    fftkernels::fft_in_place(&mut data[b * n..(b + 1) * n], dir);
                }
                heap.write_f64(odata, &as_f64s(&data))
                    .expect("cufft output");
            })
        } else {
            Kernel::timed(&name, KernelCost::Fixed(duration))
        };
        let threads = (p.n / 2).clamp(1, 256) as u32;
        let blocks = ((p.n * p.batch) as u32 / (2 * threads)).max(1);
        launch_kernel(
            self.api.as_ref(),
            &kernel,
            LaunchConfig {
                grid: Dim3::x(blocks),
                block: Dim3::x(threads),
                shared_mem: (2 * threads as usize) * 16,
                stream: p.stream,
            },
            &[KernelArg::Ptr(idata), KernelArg::Ptr(odata)],
        )
    }

    /// Number of live plans (diagnostics).
    pub fn live_plans(&self) -> usize {
        self.plans.lock().len()
    }

    /// Size and batch of a plan, if it exists. Monitoring layers use this
    /// to record operand sizes without duplicating plan state.
    pub fn plan_info(&self, plan: PlanId) -> Option<(usize, usize)> {
        self.plans.lock().get(&plan).map(|p| (p.n, p.batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use ipm_gpu_sim::{memcpy_d2h_f64, memcpy_h2d_f64, GpuConfig, GpuRuntime};

    fn setup() -> (Arc<GpuRuntime>, CufftContext) {
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        let fft = CufftContext::new(rt.clone(), CufftConfig::default());
        (rt, fft)
    }

    #[test]
    fn plan_validation() {
        let (_rt, fft) = setup();
        assert_eq!(
            fft.plan_1d(12, FftType::Z2Z, 1).unwrap_err(),
            CudaError::InvalidValue
        );
        assert_eq!(
            fft.plan_1d(16, FftType::Z2Z, 0).unwrap_err(),
            CudaError::InvalidValue
        );
        let p = fft.plan_1d(16, FftType::Z2Z, 2).unwrap();
        assert_eq!(fft.live_plans(), 1);
        fft.destroy(p).unwrap();
        assert_eq!(
            fft.destroy(p).unwrap_err(),
            CudaError::InvalidResourceHandle
        );
        assert_eq!(fft.live_plans(), 0);
    }

    #[test]
    fn device_fft_matches_host_reference() {
        let (rt, fft) = setup();
        let n = 32;
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.4).sin(), (i as f64 * 1.1).cos()))
            .collect();
        let d = rt.malloc(n * 16).unwrap();
        memcpy_h2d_f64(rt.as_ref(), d, &as_f64s(&input)).unwrap();
        let plan = fft.plan_1d(n, FftType::Z2Z, 1).unwrap();
        fft.exec_z2z(plan, d, d, FftDirection::Forward).unwrap();
        let mut raw = vec![0.0; 2 * n];
        memcpy_d2h_f64(rt.as_ref(), &mut raw, d).unwrap();
        let got = from_f64s(&raw);
        let want = fftkernels::fft(&input, FftDirection::Forward);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-9, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn batched_execution_transforms_each_segment() {
        let (rt, fft) = setup();
        let n = 8;
        let batch = 3;
        let mut input = vec![Complex64::ZERO; n * batch];
        for b in 0..batch {
            input[b * n] = Complex64::new(b as f64 + 1.0, 0.0); // impulse per batch
        }
        let d = rt.malloc(n * batch * 16).unwrap();
        memcpy_h2d_f64(rt.as_ref(), d, &as_f64s(&input)).unwrap();
        let plan = fft.plan_1d(n, FftType::Z2Z, batch).unwrap();
        fft.exec_z2z(plan, d, d, FftDirection::Forward).unwrap();
        let mut raw = vec![0.0; 2 * n * batch];
        memcpy_d2h_f64(rt.as_ref(), &mut raw, d).unwrap();
        let got = from_f64s(&raw);
        for b in 0..batch {
            for k in 0..n {
                let want = Complex64::new(b as f64 + 1.0, 0.0);
                assert!((got[b * n + k] - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn exec_with_wrong_type_rejected() {
        let (_rt, fft) = setup();
        let plan = fft.plan_1d(16, FftType::C2C, 1).unwrap();
        assert_eq!(
            fft.exec_z2z(
                plan,
                DevicePtr::NULL,
                DevicePtr::NULL,
                FftDirection::Forward
            )
            .unwrap_err(),
            CudaError::InvalidValue
        );
    }

    #[test]
    fn execution_charges_device_time() {
        let (rt, fft) = setup();
        let n = 1 << 20; // large: timing-only path
        let d = rt.malloc(16).unwrap(); // operands untouched in modeled mode
        let plan = fft.plan_1d(n, FftType::Z2Z, 4).unwrap();
        fft.exec_z2z(plan, d, d, FftDirection::Forward).unwrap();
        let before = rt.clock().now();
        rt.thread_synchronize().unwrap();
        assert!(rt.clock().now() > before, "no device time charged");
    }
}
