//! Reference BLAS computational kernels (pure math, no timing).
//!
//! These are the *actual* linear-algebra routines shared by the host BLAS
//! ("MKL" baseline) and the device effects of the CUBLAS-like library.
//! Column-major layout throughout, as in Fortran BLAS; `lda` is the leading
//! dimension of `a` (rows of the allocated matrix).

use crate::complex::Complex64;

/// Transpose option for GEMM-family routines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transpose {
    /// No transpose (`'N'`).
    N,
    /// Transpose (`'T'`).
    T,
    /// Conjugate transpose (`'C'`; identical to `T` for real data).
    C,
}

impl Transpose {
    /// The BLAS character for this option.
    pub fn as_char(self) -> char {
        match self {
            Transpose::N => 'N',
            Transpose::T => 'T',
            Transpose::C => 'C',
        }
    }
}

#[inline]
fn at(ld: usize, i: usize, j: usize) -> usize {
    j * ld + i
}

/// Element `(i, j)` of op(A) for an `m x k` operand.
#[inline]
fn fetch_d(a: &[f64], lda: usize, trans: Transpose, i: usize, j: usize) -> f64 {
    match trans {
        Transpose::N => a[at(lda, i, j)],
        Transpose::T | Transpose::C => a[at(lda, j, i)],
    }
}

#[inline]
fn fetch_z(a: &[Complex64], lda: usize, trans: Transpose, i: usize, j: usize) -> Complex64 {
    match trans {
        Transpose::N => a[at(lda, i, j)],
        Transpose::T => a[at(lda, j, i)],
        Transpose::C => a[at(lda, j, i)].conj(),
    }
}

/// `DGEMM`: `C = alpha * op(A) * op(B) + beta * C`, column-major.
///
/// `m, n, k` are the dimensions of the *operation* (`op(A)` is `m x k`);
/// `lda/ldb/ldc` are the leading dimensions of the stored arrays.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    assert!(ldc >= m.max(1));
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for p in 0..k {
                acc += fetch_d(a, lda, ta, i, p) * fetch_d(b, ldb, tb, p, j);
            }
            let cij = &mut c[at(ldc, i, j)];
            *cij = alpha * acc + beta * *cij;
        }
    }
}

/// `ZGEMM`: complex `C = alpha * op(A) * op(B) + beta * C`, column-major.
#[allow(clippy::too_many_arguments)]
pub fn zgemm(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: Complex64,
    a: &[Complex64],
    lda: usize,
    b: &[Complex64],
    ldb: usize,
    beta: Complex64,
    c: &mut [Complex64],
    ldc: usize,
) {
    assert!(ldc >= m.max(1));
    for j in 0..n {
        for i in 0..m {
            let mut acc = Complex64::ZERO;
            for p in 0..k {
                acc += fetch_z(a, lda, ta, i, p) * fetch_z(b, ldb, tb, p, j);
            }
            let cij = &mut c[at(ldc, i, j)];
            *cij = alpha * acc + beta * *cij;
        }
    }
}

/// `DGEMV`: `y = alpha * op(A) * x + beta * y`.
#[allow(clippy::too_many_arguments)]
pub fn dgemv(
    trans: Transpose,
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) {
    let (rows, cols) = match trans {
        Transpose::N => (m, n),
        Transpose::T | Transpose::C => (n, m),
    };
    for (i, yi) in y.iter_mut().enumerate().take(rows) {
        let mut acc = 0.0;
        for (j, xj) in x.iter().enumerate().take(cols) {
            acc += fetch_d(a, lda, trans, i, j) * xj;
        }
        *yi = alpha * acc + beta * *yi;
    }
}

/// `DAXPY`: `y += alpha * x`.
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `DDOT`.
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `DSCAL`: `x *= alpha`.
pub fn dscal(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// `IDAMAX`: index of the element with the largest absolute value
/// (0-based; BLAS returns 1-based). Returns 0 for an empty vector.
pub fn idamax(x: &[f64]) -> usize {
    x.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.abs().partial_cmp(&b.abs()).expect("no NaNs in idamax"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// `DTRSM` (left, lower, non-transposed, non-unit): solve `L * X = alpha*B`
/// in place over `B` (`m x n`), with `L` the lower triangle of `a`.
/// This is the variant the HPL-like solver uses.
pub fn dtrsm_llnn(
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &mut [f64],
    ldb: usize,
) {
    for j in 0..n {
        for i in 0..m {
            b[at(ldb, i, j)] *= alpha;
            let bij = b[at(ldb, i, j)];
            let li = a[at(lda, i, i)];
            let x = bij / li;
            b[at(ldb, i, j)] = x;
            for r in (i + 1)..m {
                b[at(ldb, r, j)] -= a[at(lda, r, i)] * x;
            }
        }
    }
}

/// Flop count of a real GEMM (`2mnk`), the standard convention.
pub fn dgemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Flop count of a complex GEMM (`8mnk`: 4 mul + 4 add per element pair).
pub fn zgemm_flops(m: usize, n: usize, k: usize) -> f64 {
    8.0 * m as f64 * n as f64 * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col_major(rows: usize, data: &[&[f64]]) -> Vec<f64> {
        // data given row-major for readability; convert
        let cols = data[0].len();
        let mut out = vec![0.0; rows * cols];
        for (i, row) in data.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                out[j * rows + i] = v;
            }
        }
        out
    }

    #[test]
    fn dgemm_nn_matches_hand_result() {
        // A = [1 2; 3 4], B = [5 6; 7 8] → AB = [19 22; 43 50]
        let a = col_major(2, &[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = col_major(2, &[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut c = vec![0.0; 4];
        dgemm(
            Transpose::N,
            Transpose::N,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &b,
            2,
            0.0,
            &mut c,
            2,
        );
        assert_eq!(c, col_major(2, &[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn dgemm_nt_and_tn() {
        let a = col_major(2, &[&[1.0, 2.0], &[3.0, 4.0]]);
        // C = A * A^T = [5 11; 11 25]
        let mut c = vec![0.0; 4];
        dgemm(
            Transpose::N,
            Transpose::T,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &a,
            2,
            0.0,
            &mut c,
            2,
        );
        assert_eq!(c, col_major(2, &[&[5.0, 11.0], &[11.0, 25.0]]));
        // C = A^T * A = [10 14; 14 20]
        dgemm(
            Transpose::T,
            Transpose::N,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &a,
            2,
            0.0,
            &mut c,
            2,
        );
        assert_eq!(c, col_major(2, &[&[10.0, 14.0], &[14.0, 20.0]]));
    }

    #[test]
    fn dgemm_alpha_beta() {
        let a = col_major(1, &[&[2.0]]);
        let b = col_major(1, &[&[3.0]]);
        let mut c = vec![10.0];
        dgemm(
            Transpose::N,
            Transpose::N,
            1,
            1,
            1,
            2.0,
            &a,
            1,
            &b,
            1,
            0.5,
            &mut c,
            1,
        );
        assert_eq!(c, vec![2.0 * 6.0 + 0.5 * 10.0]);
    }

    #[test]
    fn zgemm_identity_and_conjugate() {
        let i2 = vec![
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
        ];
        let a = vec![
            Complex64::new(1.0, 1.0),
            Complex64::new(2.0, -1.0),
            Complex64::new(0.0, 3.0),
            Complex64::new(-1.0, 0.5),
        ];
        let mut c = vec![Complex64::ZERO; 4];
        zgemm(
            Transpose::N,
            Transpose::N,
            2,
            2,
            2,
            Complex64::ONE,
            &a,
            2,
            &i2,
            2,
            Complex64::ZERO,
            &mut c,
            2,
        );
        assert_eq!(c, a);

        // A^H applied to identity gives conjugate transpose entries
        zgemm(
            Transpose::C,
            Transpose::N,
            2,
            2,
            2,
            Complex64::ONE,
            &a,
            2,
            &i2,
            2,
            Complex64::ZERO,
            &mut c,
            2,
        );
        assert_eq!(c[0], a[0].conj());
        assert_eq!(c[1], a[2].conj()); // (1,0) of A^H is conj(A[0,1])
    }

    #[test]
    fn dgemv_both_orientations() {
        // A = [1 2; 3 4]
        let a = col_major(2, &[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = [1.0, 1.0];
        let mut y = [0.0, 0.0];
        dgemv(Transpose::N, 2, 2, 1.0, &a, 2, &x, 0.0, &mut y);
        assert_eq!(y, [3.0, 7.0]);
        dgemv(Transpose::T, 2, 2, 1.0, &a, 2, &x, 0.0, &mut y);
        assert_eq!(y, [4.0, 6.0]);
    }

    #[test]
    fn level1_routines() {
        let x = [1.0, -2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        daxpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 6.0, 16.0]);
        assert_eq!(ddot(&x, &x), 14.0);
        let mut z = [1.0, 2.0];
        dscal(-3.0, &mut z);
        assert_eq!(z, [-3.0, -6.0]);
        assert_eq!(idamax(&[0.5, -9.0, 3.0]), 1);
        assert_eq!(idamax(&[]), 0);
    }

    #[test]
    fn dtrsm_solves_lower_triangular_system() {
        // L = [2 0; 1 4], B = L * X with X = [1 2; 3 4] → solve recovers X
        let l = col_major(2, &[&[2.0, 0.0], &[1.0, 4.0]]);
        let x_true = col_major(2, &[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut b = vec![0.0; 4];
        dgemm(
            Transpose::N,
            Transpose::N,
            2,
            2,
            2,
            1.0,
            &l,
            2,
            &x_true,
            2,
            0.0,
            &mut b,
            2,
        );
        dtrsm_llnn(2, 2, 1.0, &l, 2, &mut b, 2);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn flop_counts() {
        assert_eq!(dgemm_flops(2, 3, 4), 48.0);
        assert_eq!(zgemm_flops(2, 3, 4), 192.0);
    }
}
