//! Interposable entry points of the accelerated libraries.
//!
//! Paper §III-D: IPM wraps the CUBLAS and CUFFT entry points (in addition
//! to the CUDA calls they make internally) and records the **operand
//! sizes** in the hash table's `bytes` attribute, so achieved performance
//! can later be correlated with operation size. These traits are that
//! wrapping surface; `ipm-core` provides the monitoring implementations.

use crate::blaskernels::Transpose;
use crate::complex::Complex64;
use crate::cublas::CublasContext;
use crate::cufft::{CufftContext, FftType, PlanId};
use crate::fftkernels::FftDirection;
use ipm_gpu_sim::{CudaResult, DevicePtr, StreamId};

/// The CUBLAS entry points the paper's applications exercise.
pub trait BlasApi: Send + Sync {
    /// `cublasAlloc`.
    fn cublas_alloc(&self, n: usize, elem_size: usize) -> CudaResult<DevicePtr>;
    /// `cublasFree`.
    fn cublas_free(&self, ptr: DevicePtr) -> CudaResult<()>;
    /// `cublasSetMatrix`.
    fn cublas_set_matrix(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        host: &[u8],
        dev: DevicePtr,
    ) -> CudaResult<()>;
    /// `cublasGetMatrix`.
    fn cublas_get_matrix(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        dev: DevicePtr,
        host: &mut [u8],
    ) -> CudaResult<()>;
    /// Scale adapter: `cublasSetMatrix` timed at full size with only a
    /// physical prefix staged (see `CublasContext::set_matrix_modeled`).
    fn cublas_set_matrix_modeled(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        host_prefix: &[u8],
        dev: DevicePtr,
    ) -> CudaResult<()>;
    /// Scale adapter: the D2H counterpart.
    fn cublas_get_matrix_modeled(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        dev: DevicePtr,
        host_prefix: &mut [u8],
    ) -> CudaResult<()>;
    /// `cublasSetVector`.
    fn cublas_set_vector(
        &self,
        n: usize,
        elem_size: usize,
        host: &[u8],
        dev: DevicePtr,
    ) -> CudaResult<()>;
    /// `cublasGetVector`.
    fn cublas_get_vector(
        &self,
        n: usize,
        elem_size: usize,
        dev: DevicePtr,
        host: &mut [u8],
    ) -> CudaResult<()>;
    /// `cublasDgemm`.
    #[allow(clippy::too_many_arguments)]
    fn cublas_dgemm(
        &self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        da: DevicePtr,
        lda: usize,
        db: DevicePtr,
        ldb: usize,
        beta: f64,
        dc: DevicePtr,
        ldc: usize,
    ) -> CudaResult<()>;
    /// `cublasZgemm`.
    #[allow(clippy::too_many_arguments)]
    fn cublas_zgemm(
        &self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: Complex64,
        da: DevicePtr,
        lda: usize,
        db: DevicePtr,
        ldb: usize,
        beta: Complex64,
        dc: DevicePtr,
        ldc: usize,
    ) -> CudaResult<()>;
    /// `cublasDaxpy`.
    fn cublas_daxpy(&self, n: usize, alpha: f64, dx: DevicePtr, dy: DevicePtr) -> CudaResult<()>;
    /// `cublasDdot`.
    fn cublas_ddot(&self, n: usize, dx: DevicePtr, dy: DevicePtr) -> CudaResult<f64>;
}

impl BlasApi for CublasContext {
    fn cublas_alloc(&self, n: usize, elem_size: usize) -> CudaResult<DevicePtr> {
        self.alloc(n, elem_size)
    }
    fn cublas_free(&self, ptr: DevicePtr) -> CudaResult<()> {
        self.free(ptr)
    }
    fn cublas_set_matrix(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        host: &[u8],
        dev: DevicePtr,
    ) -> CudaResult<()> {
        self.set_matrix(rows, cols, elem_size, host, dev)
    }
    fn cublas_get_matrix(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        dev: DevicePtr,
        host: &mut [u8],
    ) -> CudaResult<()> {
        self.get_matrix(rows, cols, elem_size, dev, host)
    }
    fn cublas_set_matrix_modeled(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        host_prefix: &[u8],
        dev: DevicePtr,
    ) -> CudaResult<()> {
        self.set_matrix_modeled(rows, cols, elem_size, host_prefix, dev)
    }
    fn cublas_get_matrix_modeled(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        dev: DevicePtr,
        host_prefix: &mut [u8],
    ) -> CudaResult<()> {
        self.get_matrix_modeled(rows, cols, elem_size, dev, host_prefix)
    }
    fn cublas_set_vector(
        &self,
        n: usize,
        elem_size: usize,
        host: &[u8],
        dev: DevicePtr,
    ) -> CudaResult<()> {
        self.set_vector(n, elem_size, host, dev)
    }
    fn cublas_get_vector(
        &self,
        n: usize,
        elem_size: usize,
        dev: DevicePtr,
        host: &mut [u8],
    ) -> CudaResult<()> {
        self.get_vector(n, elem_size, dev, host)
    }
    fn cublas_dgemm(
        &self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        da: DevicePtr,
        lda: usize,
        db: DevicePtr,
        ldb: usize,
        beta: f64,
        dc: DevicePtr,
        ldc: usize,
    ) -> CudaResult<()> {
        self.dgemm(ta, tb, m, n, k, alpha, da, lda, db, ldb, beta, dc, ldc)
    }
    fn cublas_zgemm(
        &self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: Complex64,
        da: DevicePtr,
        lda: usize,
        db: DevicePtr,
        ldb: usize,
        beta: Complex64,
        dc: DevicePtr,
        ldc: usize,
    ) -> CudaResult<()> {
        self.zgemm(ta, tb, m, n, k, alpha, da, lda, db, ldb, beta, dc, ldc)
    }
    fn cublas_daxpy(&self, n: usize, alpha: f64, dx: DevicePtr, dy: DevicePtr) -> CudaResult<()> {
        self.daxpy(n, alpha, dx, dy)
    }
    fn cublas_ddot(&self, n: usize, dx: DevicePtr, dy: DevicePtr) -> CudaResult<f64> {
        self.ddot(n, dx, dy)
    }
}

/// The CUFFT entry points.
pub trait FftApi: Send + Sync {
    /// `cufftPlan1d`.
    fn cufft_plan_1d(&self, n: usize, ty: FftType, batch: usize) -> CudaResult<PlanId>;
    /// `cufftSetStream`.
    fn cufft_set_stream(&self, plan: PlanId, stream: StreamId) -> CudaResult<()>;
    /// `cufftExecZ2Z`.
    fn cufft_exec_z2z(
        &self,
        plan: PlanId,
        idata: DevicePtr,
        odata: DevicePtr,
        dir: FftDirection,
    ) -> CudaResult<()>;
    /// `cufftDestroy`.
    fn cufft_destroy(&self, plan: PlanId) -> CudaResult<()>;
}

impl FftApi for CufftContext {
    fn cufft_plan_1d(&self, n: usize, ty: FftType, batch: usize) -> CudaResult<PlanId> {
        self.plan_1d(n, ty, batch)
    }
    fn cufft_set_stream(&self, plan: PlanId, stream: StreamId) -> CudaResult<()> {
        self.set_stream(plan, stream)
    }
    fn cufft_exec_z2z(
        &self,
        plan: PlanId,
        idata: DevicePtr,
        odata: DevicePtr,
        dir: FftDirection,
    ) -> CudaResult<()> {
        self.exec_z2z(plan, idata, odata, dir)
    }
    fn cufft_destroy(&self, plan: PlanId) -> CudaResult<()> {
        self.destroy(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cublas::DeviceLibConfig;
    use crate::cufft::CufftConfig;
    use ipm_gpu_sim::{GpuConfig, GpuRuntime};
    use std::sync::Arc;

    #[test]
    fn blas_trait_object_dispatch() {
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        let ctx = CublasContext::init(rt, DeviceLibConfig::default());
        let api: &dyn BlasApi = &ctx;
        let d = api.cublas_alloc(8, 8).unwrap();
        api.cublas_free(d).unwrap();
    }

    #[test]
    fn fft_trait_object_dispatch() {
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        let ctx = CufftContext::new(rt, CufftConfig::default());
        let api: &dyn FftApi = &ctx;
        let p = api.cufft_plan_1d(64, FftType::Z2Z, 1).unwrap();
        api.cufft_destroy(p).unwrap();
    }
}
