//! # ipm-numlib
//!
//! Numerical libraries for the IPM reproduction, in two tiers:
//!
//! * **Host baselines** ([`host`]): sequential "MKL" BLAS and "FFTW" FFT
//!   running on the CPU compute model — the unaccelerated configuration in
//!   the paper's PARATEC study.
//! * **Accelerated libraries** ([`cublas`], [`cufft`]): CUBLAS- and
//!   CUFFT-like APIs layered over the interposable CUDA seam, including the
//!   Fortran *thunking* wrappers whose blocking transfer behavior the paper
//!   analyzes (§IV-D).
//!
//! Both tiers share the *reference kernels* ([`blaskernels`],
//! [`fftkernels`]): real math, tested against hand results and analytic
//! identities, so the workspace's applications compute genuinely correct
//! answers wherever problem sizes permit (see `host` docs on the exactness
//! threshold).

pub mod api;
pub mod blaskernels;
pub mod complex;
pub mod cublas;
pub mod cufft;
pub mod fftkernels;
pub mod host;

pub use api::{BlasApi, FftApi};
pub use blaskernels::Transpose;
pub use complex::Complex64;
pub use cublas::{thunking, CublasContext, DeviceLibConfig};
pub use cufft::{CufftConfig, CufftContext, FftType, PlanId};
pub use fftkernels::FftDirection;
pub use host::{ComputeFidelity, HostBlas, HostFft, HostLibConfig};
