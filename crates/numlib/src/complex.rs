//! A minimal double-precision complex number.
//!
//! `zgemm` (the BLAS routine dominating the paper's PARATEC study) and the
//! CUFFT-like library need complex arithmetic; this 16-byte POD keeps the
//! workspace free of external numeric crates and matches the memory layout
//! of Fortran `COMPLEX*16` / CUDA `cuDoubleComplex` (interleaved re, im).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` parts, laid out as `[re, im]`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    pub re: f64,
    pub im: f64,
}

impl Complex64 {
    /// Zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{i theta}` — used by FFT twiddle factors.
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }
}

/// Reinterpret a complex slice as interleaved `f64`s (device layout).
pub fn as_f64s(xs: &[Complex64]) -> Vec<f64> {
    xs.iter().flat_map(|c| [c.re, c.im]).collect()
}

/// Rebuild complex values from interleaved `f64`s.
pub fn from_f64s(xs: &[f64]) -> Vec<Complex64> {
    assert!(
        xs.len().is_multiple_of(2),
        "interleaved complex data must have even length"
    );
    xs.chunks_exact(2)
        .map(|c| Complex64::new(c[0], c[1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spotcheck() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, Complex64::new(-2.0, 2.5));
        assert_eq!(a - b, Complex64::new(4.0, 1.5));
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a * Complex64::ZERO, Complex64::ZERO);
        // i^2 = -1
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(4.0, -1.0);
        // (2+3i)(4-i) = 8 - 2i + 12i - 3i^2 = 11 + 10i
        assert_eq!(a * b, Complex64::new(11.0, 10.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < 1e-12 && p.im.abs() < 1e-12);
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::TAU / 16.0;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
        let half_turn = Complex64::cis(std::f64::consts::PI);
        assert!((half_turn.re + 1.0).abs() < 1e-12 && half_turn.im.abs() < 1e-12);
    }

    #[test]
    fn interleaved_roundtrip() {
        let xs = vec![Complex64::new(1.0, 2.0), Complex64::new(-3.0, 4.0)];
        assert_eq!(as_f64s(&xs), vec![1.0, 2.0, -3.0, 4.0]);
        assert_eq!(from_f64s(&as_f64s(&xs)), xs);
    }
}
