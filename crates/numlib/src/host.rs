//! Host-side numerical libraries: the "MKL BLAS" and "FFTW" baselines.
//!
//! The paper's PARATEC study compares sequential MKL BLAS against CUBLAS
//! (Fig. 10: switching to CUBLAS improves the runtime from 1976 s to
//! 1285 s). This module is that baseline: real math from
//! [`crate::blaskernels`] / [`crate::fftkernels`], with durations priced by
//! a Nehalem-core compute model against the caller's virtual clock.
//!
//! ## Exactness threshold
//!
//! Paper-scale operands (e.g. a 2048² `zgemm`) would take minutes of *wall*
//! time with a reference triple loop, while their *virtual* duration is
//! milliseconds. Calls whose flop count exceeds
//! [`HostLibConfig::exact_flops_limit`] therefore charge virtual time but
//! skip the arithmetic, and report [`ComputeFidelity::Modeled`]. Tests and
//! examples that check numerics use operand sizes below the limit (where
//! every result is bit-exact reference math, [`ComputeFidelity::Exact`]).

use crate::blaskernels::{self, Transpose};
use crate::complex::Complex64;
use crate::fftkernels::{self, FftDirection};
use ipm_sim_core::model::CpuComputeModel;
use ipm_sim_core::SimClock;

/// Whether a call really computed or only charged virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeFidelity {
    /// Results were produced by the reference kernel.
    Exact,
    /// Flop count exceeded the exactness threshold: duration charged,
    /// operands untouched.
    Modeled,
}

/// Configuration of the host libraries.
#[derive(Clone, Copy, Debug)]
pub struct HostLibConfig {
    /// CPU compute model (per-rank).
    pub cpu: CpuComputeModel,
    /// Achieved fraction of peak for GEMM-shaped work.
    pub gemm_efficiency: f64,
    /// Achieved fraction of peak for FFT-shaped work.
    pub fft_efficiency: f64,
    /// Above this many flops a call is timing-only (see module docs).
    pub exact_flops_limit: f64,
}

impl Default for HostLibConfig {
    fn default() -> Self {
        Self {
            cpu: CpuComputeModel::xeon_5530_core(),
            gemm_efficiency: 0.85,
            fft_efficiency: 0.35,
            exact_flops_limit: 5.0e7,
        }
    }
}

/// Sequential host BLAS bound to a virtual clock ("MKL").
pub struct HostBlas {
    clock: SimClock,
    cfg: HostLibConfig,
}

impl HostBlas {
    /// Create a host BLAS charging time to `clock`.
    pub fn new(clock: SimClock, cfg: HostLibConfig) -> Self {
        Self { clock, cfg }
    }

    fn charge(&self, flops: f64, efficiency: f64) -> ComputeFidelity {
        self.clock
            .advance(self.cfg.cpu.compute_time(flops, efficiency));
        if flops <= self.cfg.exact_flops_limit {
            ComputeFidelity::Exact
        } else {
            ComputeFidelity::Modeled
        }
    }

    /// `DGEMM` with timing; see [`blaskernels::dgemm`].
    #[allow(clippy::too_many_arguments)]
    pub fn dgemm(
        &self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        lda: usize,
        b: &[f64],
        ldb: usize,
        beta: f64,
        c: &mut [f64],
        ldc: usize,
    ) -> ComputeFidelity {
        let fid = self.charge(blaskernels::dgemm_flops(m, n, k), self.cfg.gemm_efficiency);
        if fid == ComputeFidelity::Exact {
            blaskernels::dgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
        }
        fid
    }

    /// `ZGEMM` with timing; see [`blaskernels::zgemm`].
    #[allow(clippy::too_many_arguments)]
    pub fn zgemm(
        &self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: Complex64,
        a: &[Complex64],
        lda: usize,
        b: &[Complex64],
        ldb: usize,
        beta: Complex64,
        c: &mut [Complex64],
        ldc: usize,
    ) -> ComputeFidelity {
        let fid = self.charge(blaskernels::zgemm_flops(m, n, k), self.cfg.gemm_efficiency);
        if fid == ComputeFidelity::Exact {
            blaskernels::zgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
        }
        fid
    }

    /// `DGEMV` with timing.
    #[allow(clippy::too_many_arguments)]
    pub fn dgemv(
        &self,
        trans: Transpose,
        m: usize,
        n: usize,
        alpha: f64,
        a: &[f64],
        lda: usize,
        x: &[f64],
        beta: f64,
        y: &mut [f64],
    ) -> ComputeFidelity {
        let fid = self.charge(2.0 * m as f64 * n as f64, self.cfg.gemm_efficiency);
        if fid == ComputeFidelity::Exact {
            blaskernels::dgemv(trans, m, n, alpha, a, lda, x, beta, y);
        }
        fid
    }

    /// `DAXPY` with timing. Level-1 calls are always exact (they are
    /// memory-bound and cheap).
    pub fn daxpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        self.clock
            .advance(self.cfg.cpu.compute_time(2.0 * x.len() as f64, 0.3));
        blaskernels::daxpy(alpha, x, y);
    }

    /// `DDOT` with timing.
    pub fn ddot(&self, x: &[f64], y: &[f64]) -> f64 {
        self.clock
            .advance(self.cfg.cpu.compute_time(2.0 * x.len() as f64, 0.3));
        blaskernels::ddot(x, y)
    }

    /// `DSCAL` with timing.
    pub fn dscal(&self, alpha: f64, x: &mut [f64]) {
        self.clock
            .advance(self.cfg.cpu.compute_time(x.len() as f64, 0.3));
        blaskernels::dscal(alpha, x);
    }

    /// `IDAMAX` with timing.
    pub fn idamax(&self, x: &[f64]) -> usize {
        self.clock
            .advance(self.cfg.cpu.compute_time(x.len() as f64, 0.3));
        blaskernels::idamax(x)
    }

    /// The bound clock (for tests).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

/// Host FFT bound to a virtual clock ("FFTW").
pub struct HostFft {
    clock: SimClock,
    cfg: HostLibConfig,
}

impl HostFft {
    /// Create a host FFT charging time to `clock`.
    pub fn new(clock: SimClock, cfg: HostLibConfig) -> Self {
        Self { clock, cfg }
    }

    /// In-place complex transform with timing.
    pub fn execute(&self, data: &mut [Complex64], dir: FftDirection) -> ComputeFidelity {
        let flops = fftkernels::fft_flops(data.len());
        self.clock
            .advance(self.cfg.cpu.compute_time(flops, self.cfg.fft_efficiency));
        if flops <= self.cfg.exact_flops_limit {
            fftkernels::fft_in_place(data, dir);
            ComputeFidelity::Exact
        } else {
            ComputeFidelity::Modeled
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blas() -> HostBlas {
        HostBlas::new(SimClock::new(), HostLibConfig::default())
    }

    #[test]
    fn dgemm_charges_time_and_computes() {
        let b = blas();
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity
        let x = vec![3.0, 4.0, 5.0, 6.0];
        let mut c = vec![0.0; 4];
        let fid = b.dgemm(
            Transpose::N,
            Transpose::N,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &x,
            2,
            0.0,
            &mut c,
            2,
        );
        assert_eq!(fid, ComputeFidelity::Exact);
        assert_eq!(c, x);
        assert!(b.clock().now() > 0.0);
    }

    #[test]
    fn huge_gemm_is_timing_only() {
        let b = blas();
        let n = 4096; // 2*4096^3 ≈ 1.4e11 flops >> limit
        let a = vec![0.0; 1]; // operands can be tiny: they are not touched
        let mut c = vec![0.0; 1];
        let before = b.clock().now();
        let fid = b.dgemm(
            Transpose::N,
            Transpose::N,
            n,
            n,
            n,
            1.0,
            &a,
            n,
            &a,
            n,
            0.0,
            &mut c,
            n,
        );
        assert_eq!(fid, ComputeFidelity::Modeled);
        // 1.37e11 flops at ~8.2 GF/s → tens of seconds of *virtual* time
        assert!(b.clock().now() - before > 5.0);
        assert_eq!(c[0], 0.0); // untouched
    }

    #[test]
    fn virtual_time_scales_with_problem_size() {
        let b = blas();
        let a = vec![0.0; 1];
        let mut c = vec![0.0; 1];
        let t0 = b.clock().now();
        b.dgemm(
            Transpose::N,
            Transpose::N,
            512,
            512,
            512,
            1.0,
            &a,
            512,
            &a,
            512,
            0.0,
            &mut c,
            512,
        );
        let t1 = b.clock().now();
        b.dgemm(
            Transpose::N,
            Transpose::N,
            1024,
            1024,
            1024,
            1.0,
            &a,
            1024,
            &a,
            1024,
            0.0,
            &mut c,
            1024,
        );
        let t2 = b.clock().now();
        let ratio = (t2 - t1) / (t1 - t0);
        assert!(
            (ratio - 8.0).abs() < 0.01,
            "gemm should scale cubically, ratio {ratio}"
        );
    }

    #[test]
    fn level1_calls_are_cheap_and_exact() {
        let b = blas();
        let mut y = vec![1.0; 100];
        b.daxpy(2.0, &vec![1.0; 100], &mut y);
        assert_eq!(y[0], 3.0);
        assert!(b.clock().now() < 1e-6);
        assert_eq!(b.ddot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(b.idamax(&[1.0, -5.0, 2.0]), 1);
        let mut z = vec![2.0];
        b.dscal(0.5, &mut z);
        assert_eq!(z, vec![1.0]);
    }

    #[test]
    fn host_fft_times_and_computes() {
        let f = HostFft::new(SimClock::new(), HostLibConfig::default());
        let mut x = vec![Complex64::ZERO; 64];
        x[0] = Complex64::ONE;
        let fid = f.execute(&mut x, FftDirection::Forward);
        assert_eq!(fid, ComputeFidelity::Exact);
        assert!((x[5] - Complex64::ONE).abs() < 1e-9);
    }
}
