//! Reference FFT computational kernel (pure math, no timing).
//!
//! An iterative radix-2 Cooley–Tukey transform, shared by the host FFT
//! ("FFTW" baseline) and the device effect of the CUFFT-like library.

use crate::complex::Complex64;

/// Transform direction, matching `CUFFT_FORWARD` / `CUFFT_INVERSE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FftDirection {
    Forward,
    Inverse,
}

/// In-place radix-2 FFT. `data.len()` must be a power of two.
///
/// Follows the CUFFT/FFTW convention: the inverse transform is
/// **unnormalized** (forward followed by inverse scales by `n`).
pub fn fft_in_place(data: &mut [Complex64], dir: FftDirection) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT requires a power-of-two length, got {n}"
    );
    if n <= 1 {
        return;
    }

    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }

    let sign = match dir {
        FftDirection::Forward => -1.0,
        FftDirection::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex64::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Out-of-place convenience.
pub fn fft(input: &[Complex64], dir: FftDirection) -> Vec<Complex64> {
    let mut out = input.to_vec();
    fft_in_place(&mut out, dir);
    out
}

/// Flop count of one complex FFT of length `n` (standard `5 n log2 n`).
pub fn fft_flops(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    5.0 * n as f64 * (n as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn impulse_transforms_to_all_ones() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let y = fft(&x, FftDirection::Forward);
        assert!(y.iter().all(|&v| close(v, Complex64::ONE)));
    }

    #[test]
    fn constant_transforms_to_scaled_impulse() {
        let x = vec![Complex64::ONE; 16];
        let y = fft(&x, FftDirection::Forward);
        assert!(close(y[0], Complex64::new(16.0, 0.0)));
        assert!(y[1..].iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(std::f64::consts::TAU * k as f64 * t as f64 / n as f64))
            .collect();
        let y = fft(&x, FftDirection::Forward);
        assert!(
            close(y[k], Complex64::new(n as f64, 0.0)),
            "bin {k} = {:?}",
            y[k]
        );
        for (i, v) in y.iter().enumerate() {
            if i != k {
                assert!(v.abs() < 1e-8, "leakage at bin {i}: {v:?}");
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip_scales_by_n() {
        let n = 32;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let y = fft(&fft(&x, FftDirection::Forward), FftDirection::Inverse);
        for (orig, round) in x.iter().zip(&y) {
            assert!(close(round.scale(1.0 / n as f64), *orig));
        }
    }

    #[test]
    fn parseval_identity_holds() {
        let n = 128;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 1.3).sin(), (i as f64 * 0.2).cos()))
            .collect();
        let y = fft(&x, FftDirection::Forward);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-6 * ex);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex64::ZERO; 12];
        fft_in_place(&mut x, FftDirection::Forward);
    }

    #[test]
    fn tiny_lengths_are_trivial() {
        let mut x = vec![Complex64::new(3.0, 1.0)];
        fft_in_place(&mut x, FftDirection::Forward);
        assert_eq!(x[0], Complex64::new(3.0, 1.0));
        assert_eq!(fft_flops(1), 0.0);
        assert!(fft_flops(8) > 0.0);
    }
}
