//! The CUBLAS-like accelerated BLAS.
//!
//! Models NVIDIA CUBLAS as shipped with CUDA 3.1 (paper §III-D): a library
//! layered **on top of the CUDA API** — every internal memory transfer and
//! kernel launch goes through the same [`CudaApi`] seam the application
//! uses. That is exactly what makes the paper's interposition approach
//! compose: when IPM's monitoring layer is installed, CUBLAS's internal
//! `cudaLaunch`es and memcpys are intercepted too (as `LD_PRELOAD` does for
//! the real library), so GPU kernel timing works inside library calls.
//!
//! The *entry points* themselves (`cublasSetMatrix`, `cublasDgemm`, ...)
//! form a second interposition surface ([`crate::api::BlasApi`]) so IPM can
//! also attribute time to numerical-library calls and record operand sizes,
//! as §III-D describes.
//!
//! ## Thunking vs direct use (paper §IV-D)
//!
//! [`thunking`] reproduces the Fortran *thunking wrappers*: each call
//! allocates device memory, moves operands in, runs the kernel, moves the
//! result out, and frees — fully blocking, no overlap possible. The
//! device-pointer methods on [`CublasContext`] are the *direct* interface.

use crate::blaskernels::{self, Transpose};
use crate::complex::{as_f64s, from_f64s, Complex64};
use ipm_gpu_sim::{
    launch_kernel, CudaApi, CudaError, CudaResult, DevicePtr, Dim3, Kernel, KernelArg, KernelCost,
    LaunchConfig, StreamId,
};
use std::sync::Arc;

/// Configuration of the device BLAS.
#[derive(Clone, Copy, Debug)]
pub struct DeviceLibConfig {
    /// Fraction of the device roofline GEMM kernels achieve
    /// (Fermi CUBLAS dgemm sustained ~60% of peak).
    pub gemm_efficiency: f64,
    /// Above this many flops, kernels are timing-only (no reference math);
    /// see `crate::host` for the rationale.
    pub exact_flops_limit: f64,
}

impl Default for DeviceLibConfig {
    fn default() -> Self {
        Self {
            gemm_efficiency: 0.6,
            exact_flops_limit: 5.0e7,
        }
    }
}

/// A CUBLAS handle: the library state for one context.
pub struct CublasContext {
    api: Arc<dyn CudaApi>,
    cfg: DeviceLibConfig,
    /// Stream GEMM kernels are launched on (`cublasSetKernelStream`).
    stream: parking_lot::Mutex<StreamId>,
}

impl CublasContext {
    /// `cublasInit`: create the library context over an interposable CUDA
    /// API (monitored or bare).
    pub fn init(api: Arc<dyn CudaApi>, cfg: DeviceLibConfig) -> Self {
        Self {
            api,
            cfg,
            stream: parking_lot::Mutex::new(StreamId::DEFAULT),
        }
    }

    /// `cublasShutdown` (releases nothing in the simulator; present for
    /// API parity).
    pub fn shutdown(self) {}

    /// The CUDA API this library was linked against.
    pub fn cuda(&self) -> &Arc<dyn CudaApi> {
        &self.api
    }

    /// `cublasSetKernelStream`.
    pub fn set_kernel_stream(&self, stream: StreamId) {
        *self.stream.lock() = stream;
    }

    /// `cublasAlloc`: device allocation of `n` elements of `elem_size`.
    pub fn alloc(&self, n: usize, elem_size: usize) -> CudaResult<DevicePtr> {
        self.api.cuda_malloc(n * elem_size)
    }

    /// `cublasFree`.
    pub fn free(&self, ptr: DevicePtr) -> CudaResult<()> {
        self.api.cuda_free(ptr)
    }

    /// `cublasSetMatrix`: blocking host→device transfer of an
    /// `rows x cols` matrix of `elem_size`-byte elements.
    pub fn set_matrix(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        host: &[u8],
        dev: DevicePtr,
    ) -> CudaResult<()> {
        let len = rows * cols * elem_size;
        if host.len() < len {
            return Err(CudaError::InvalidValue);
        }
        self.api.cuda_memcpy_h2d(dev, &host[..len])
    }

    /// `cublasGetMatrix`: blocking device→host transfer.
    pub fn get_matrix(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        dev: DevicePtr,
        host: &mut [u8],
    ) -> CudaResult<()> {
        let len = rows * cols * elem_size;
        if host.len() < len {
            return Err(CudaError::InvalidValue);
        }
        self.api.cuda_memcpy_d2h(&mut host[..len], dev)
    }

    /// Scale adapter for paper-size operands: like [`CublasContext::set_matrix`],
    /// but only the `host_prefix` bytes are physically staged while the
    /// transfer is *timed* (and accounted) as the full `rows x cols`
    /// matrix. See `GpuRuntime::memcpy_h2d_sized`.
    pub fn set_matrix_modeled(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        host_prefix: &[u8],
        dev: DevicePtr,
    ) -> CudaResult<()> {
        let total = (rows * cols * elem_size) as u64;
        self.api.cuda_memcpy_h2d_sized(dev, host_prefix, total)
    }

    /// Scale adapter: the D2H counterpart of
    /// [`CublasContext::set_matrix_modeled`].
    pub fn get_matrix_modeled(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        dev: DevicePtr,
        host_prefix: &mut [u8],
    ) -> CudaResult<()> {
        let total = (rows * cols * elem_size) as u64;
        self.api.cuda_memcpy_d2h_sized(host_prefix, dev, total)
    }

    /// `cublasSetVector`.
    pub fn set_vector(
        &self,
        n: usize,
        elem_size: usize,
        host: &[u8],
        dev: DevicePtr,
    ) -> CudaResult<()> {
        self.set_matrix(n, 1, elem_size, host, dev)
    }

    /// `cublasGetVector`.
    pub fn get_vector(
        &self,
        n: usize,
        elem_size: usize,
        dev: DevicePtr,
        host: &mut [u8],
    ) -> CudaResult<()> {
        self.get_matrix(n, 1, elem_size, dev, host)
    }

    fn gemm_kernel_name(prefix: &str, ta: Transpose, tb: Transpose) -> String {
        format!("{}_kernel_{}{}", prefix, ta.as_char(), tb.as_char())
    }

    fn gemm_launch_config(&self, m: usize, n: usize) -> LaunchConfig {
        // 16x16 thread blocks tiling the C matrix — the CUBLAS 3.x shape
        let bx = m.div_ceil(16).max(1) as u32;
        let by = n.div_ceil(16).max(1) as u32;
        LaunchConfig {
            grid: Dim3::xy(bx, by),
            block: Dim3::xy(16, 16),
            shared_mem: 2 * 16 * 16 * 8,
            stream: *self.stream.lock(),
        }
    }

    /// `cublasDgemm` over device pointers (direct interface).
    #[allow(clippy::too_many_arguments)]
    pub fn dgemm(
        &self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        da: DevicePtr,
        lda: usize,
        db: DevicePtr,
        ldb: usize,
        beta: f64,
        dc: DevicePtr,
        ldc: usize,
    ) -> CudaResult<()> {
        let flops = blaskernels::dgemm_flops(m, n, k);
        let name = Self::gemm_kernel_name("dgemm", ta, tb);
        let cost = KernelCost::Fixed(self.kernel_time(flops, (m * k + k * n + 2 * m * n) * 8));
        let kernel = if flops <= self.cfg.exact_flops_limit {
            let (a_len, b_len, c_len) = (lda * k.max(1), ldb * n.max(1), ldc * n.max(1));
            let (a_len, b_len) = match (ta, tb) {
                (Transpose::N, Transpose::N) => (a_len, b_len),
                (_, Transpose::N) => (lda * m.max(1), b_len),
                (Transpose::N, _) => (a_len, ldb * k.max(1)),
                _ => (lda * m.max(1), ldb * k.max(1)),
            };
            Kernel::with_effect(&name, cost, move |ctx| {
                let heap = &mut *ctx.heap;
                let mut a = vec![0.0; a_len];
                let mut b = vec![0.0; b_len];
                let mut c = vec![0.0; c_len];
                heap.read_f64(da, &mut a).expect("dgemm A operand");
                heap.read_f64(db, &mut b).expect("dgemm B operand");
                heap.read_f64(dc, &mut c).expect("dgemm C operand");
                blaskernels::dgemm(ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc);
                heap.write_f64(dc, &c).expect("dgemm C result");
            })
        } else {
            Kernel::timed(&name, cost)
        };
        launch_kernel(
            self.api.as_ref(),
            &kernel,
            self.gemm_launch_config(m, n),
            &[KernelArg::Ptr(da), KernelArg::Ptr(db), KernelArg::Ptr(dc)],
        )
    }

    /// `cublasZgemm` over device pointers (interleaved complex layout).
    #[allow(clippy::too_many_arguments)]
    pub fn zgemm(
        &self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: Complex64,
        da: DevicePtr,
        lda: usize,
        db: DevicePtr,
        ldb: usize,
        beta: Complex64,
        dc: DevicePtr,
        ldc: usize,
    ) -> CudaResult<()> {
        let flops = blaskernels::zgemm_flops(m, n, k);
        let name = Self::gemm_kernel_name("zgemm", ta, tb);
        let cost = KernelCost::Fixed(self.kernel_time(flops, (m * k + k * n + 2 * m * n) * 16));
        let kernel = if flops <= self.cfg.exact_flops_limit {
            let a_len = match ta {
                Transpose::N => lda * k.max(1),
                _ => lda * m.max(1),
            };
            let b_len = match tb {
                Transpose::N => ldb * n.max(1),
                _ => ldb * k.max(1),
            };
            let c_len = ldc * n.max(1);
            Kernel::with_effect(&name, cost, move |ctx| {
                let heap = &mut *ctx.heap;
                let mut a = vec![0.0; 2 * a_len];
                let mut b = vec![0.0; 2 * b_len];
                let mut c = vec![0.0; 2 * c_len];
                heap.read_f64(da, &mut a).expect("zgemm A operand");
                heap.read_f64(db, &mut b).expect("zgemm B operand");
                heap.read_f64(dc, &mut c).expect("zgemm C operand");
                let (az, bz) = (from_f64s(&a), from_f64s(&b));
                let mut cz = from_f64s(&c);
                blaskernels::zgemm(
                    ta, tb, m, n, k, alpha, &az, lda, &bz, ldb, beta, &mut cz, ldc,
                );
                heap.write_f64(dc, &as_f64s(&cz)).expect("zgemm C result");
            })
        } else {
            Kernel::timed(&name, cost)
        };
        launch_kernel(
            self.api.as_ref(),
            &kernel,
            self.gemm_launch_config(m, n),
            &[KernelArg::Ptr(da), KernelArg::Ptr(db), KernelArg::Ptr(dc)],
        )
    }

    /// `cublasDaxpy` over device vectors.
    pub fn daxpy(&self, n: usize, alpha: f64, dx: DevicePtr, dy: DevicePtr) -> CudaResult<()> {
        let cost = KernelCost::Fixed(self.kernel_time(2.0 * n as f64, 3 * n * 8));
        let kernel = Kernel::with_effect("daxpy_kernel", cost, move |ctx| {
            let heap = &mut *ctx.heap;
            let mut x = vec![0.0; n];
            let mut y = vec![0.0; n];
            heap.read_f64(dx, &mut x).expect("daxpy x");
            heap.read_f64(dy, &mut y).expect("daxpy y");
            blaskernels::daxpy(alpha, &x, &mut y);
            heap.write_f64(dy, &y).expect("daxpy y result");
        });
        let blocks = n.div_ceil(256).max(1) as u32;
        launch_kernel(
            self.api.as_ref(),
            &kernel,
            LaunchConfig {
                grid: Dim3::x(blocks),
                block: Dim3::x(256),
                shared_mem: 0,
                stream: *self.stream.lock(),
            },
            &[KernelArg::Ptr(dx), KernelArg::Ptr(dy)],
        )
    }

    /// `cublasDdot`: launches the reduction kernel and synchronously reads
    /// the scalar back (as real CUBLAS v1 does — this call blocks).
    pub fn ddot(&self, n: usize, dx: DevicePtr, dy: DevicePtr) -> CudaResult<f64> {
        let scratch = self.api.cuda_malloc(8)?;
        let cost = KernelCost::Fixed(self.kernel_time(2.0 * n as f64, 2 * n * 8));
        let kernel = Kernel::with_effect("ddot_kernel", cost, move |ctx| {
            let heap = &mut *ctx.heap;
            let mut x = vec![0.0; n];
            let mut y = vec![0.0; n];
            heap.read_f64(dx, &mut x).expect("ddot x");
            heap.read_f64(dy, &mut y).expect("ddot y");
            let dot = blaskernels::ddot(&x, &y);
            heap.write_f64(scratch, &[dot]).expect("ddot result");
        });
        let blocks = n.div_ceil(256).max(1) as u32;
        launch_kernel(
            self.api.as_ref(),
            &kernel,
            LaunchConfig {
                grid: Dim3::x(blocks),
                block: Dim3::x(256),
                shared_mem: 256 * 8,
                stream: *self.stream.lock(),
            },
            &[
                KernelArg::Ptr(dx),
                KernelArg::Ptr(dy),
                KernelArg::Ptr(scratch),
            ],
        )?;
        let mut out = [0u8; 8];
        self.api.cuda_memcpy_d2h(&mut out, scratch)?;
        self.api.cuda_free(scratch)?;
        Ok(f64::from_le_bytes(out))
    }

    /// Duration of a device kernel doing `flops` over `bytes` of traffic.
    fn kernel_time(&self, flops: f64, bytes: usize) -> f64 {
        // priced against the C2050 roofline at the configured efficiency
        ipm_sim_core::model::GpuComputeModel::tesla_c2050().kernel_time(
            flops,
            bytes as f64,
            self.cfg.gemm_efficiency,
        )
    }
}

/// The Fortran *thunking* wrappers: blocking semantics, alloc + transfer +
/// compute + transfer + free per call (paper §IV-D). Operand sizes use the
/// leading dimensions as allocated extents.
pub mod thunking {
    use super::*;

    /// Thunking `ZGEMM` over host slices.
    #[allow(clippy::too_many_arguments)]
    pub fn zgemm(
        ctx: &CublasContext,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: Complex64,
        a: &[Complex64],
        lda: usize,
        b: &[Complex64],
        ldb: usize,
        beta: Complex64,
        c: &mut [Complex64],
        ldc: usize,
    ) -> CudaResult<()> {
        const Z: usize = 16;
        let a_cols = match ta {
            Transpose::N => k,
            _ => m,
        };
        let b_cols = match tb {
            Transpose::N => n,
            _ => k,
        };
        let da = ctx.alloc(lda * a_cols, Z)?;
        let db = ctx.alloc(ldb * b_cols, Z)?;
        let dc = ctx.alloc(ldc * n, Z)?;
        let a_bytes: Vec<u8> = as_f64s(a).iter().flat_map(|v| v.to_le_bytes()).collect();
        let b_bytes: Vec<u8> = as_f64s(b).iter().flat_map(|v| v.to_le_bytes()).collect();
        let c_bytes: Vec<u8> = as_f64s(c).iter().flat_map(|v| v.to_le_bytes()).collect();
        ctx.set_matrix(lda, a_cols, Z, &a_bytes, da)?;
        ctx.set_matrix(ldb, b_cols, Z, &b_bytes, db)?;
        ctx.set_matrix(ldc, n, Z, &c_bytes, dc)?;
        ctx.zgemm(ta, tb, m, n, k, alpha, da, lda, db, ldb, beta, dc, ldc)?;
        let mut out = vec![0u8; ldc * n * Z];
        ctx.get_matrix(ldc, n, Z, dc, &mut out)?;
        for (i, chunk) in out.chunks_exact(16).enumerate() {
            c[i] = Complex64::new(
                f64::from_le_bytes(chunk[..8].try_into().expect("re")),
                f64::from_le_bytes(chunk[8..].try_into().expect("im")),
            );
        }
        ctx.free(da)?;
        ctx.free(db)?;
        ctx.free(dc)
    }

    /// Thunking `DGEMM` over host slices.
    #[allow(clippy::too_many_arguments)]
    pub fn dgemm(
        ctx: &CublasContext,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        lda: usize,
        b: &[f64],
        ldb: usize,
        beta: f64,
        c: &mut [f64],
        ldc: usize,
    ) -> CudaResult<()> {
        const D: usize = 8;
        let a_cols = match ta {
            Transpose::N => k,
            _ => m,
        };
        let b_cols = match tb {
            Transpose::N => n,
            _ => k,
        };
        let da = ctx.alloc(lda * a_cols, D)?;
        let db = ctx.alloc(ldb * b_cols, D)?;
        let dc = ctx.alloc(ldc * n, D)?;
        let to_bytes =
            |xs: &[f64]| -> Vec<u8> { xs.iter().flat_map(|v| v.to_le_bytes()).collect() };
        ctx.set_matrix(lda, a_cols, D, &to_bytes(a), da)?;
        ctx.set_matrix(ldb, b_cols, D, &to_bytes(b), db)?;
        ctx.set_matrix(ldc, n, D, &to_bytes(c), dc)?;
        ctx.dgemm(ta, tb, m, n, k, alpha, da, lda, db, ldb, beta, dc, ldc)?;
        let mut out = vec![0u8; ldc * n * D];
        ctx.get_matrix(ldc, n, D, dc, &mut out)?;
        for (i, chunk) in out.chunks_exact(8).enumerate() {
            c[i] = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        ctx.free(da)?;
        ctx.free(db)?;
        ctx.free(dc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_gpu_sim::{GpuConfig, GpuRuntime};

    fn ctx() -> CublasContext {
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        CublasContext::init(rt, DeviceLibConfig::default())
    }

    fn to_bytes(xs: &[f64]) -> Vec<u8> {
        xs.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn set_get_matrix_roundtrip() {
        let c = ctx();
        let d = c.alloc(4, 8).unwrap();
        c.set_matrix(2, 2, 8, &to_bytes(&[1.0, 2.0, 3.0, 4.0]), d)
            .unwrap();
        let mut out = vec![0u8; 32];
        c.get_matrix(2, 2, 8, d, &mut out).unwrap();
        assert_eq!(out, to_bytes(&[1.0, 2.0, 3.0, 4.0]));
        c.free(d).unwrap();
    }

    #[test]
    fn undersized_host_buffer_rejected() {
        let c = ctx();
        let d = c.alloc(4, 8).unwrap();
        assert_eq!(
            c.set_matrix(2, 2, 8, &[0u8; 16], d).unwrap_err(),
            CudaError::InvalidValue
        );
        let mut small = vec![0u8; 8];
        assert_eq!(
            c.get_matrix(2, 2, 8, d, &mut small).unwrap_err(),
            CudaError::InvalidValue
        );
    }

    #[test]
    fn device_dgemm_computes_real_product() {
        let c = ctx();
        // A = I2 (column-major), B arbitrary → C = B
        let da = c.alloc(4, 8).unwrap();
        let db = c.alloc(4, 8).unwrap();
        let dc = c.alloc(4, 8).unwrap();
        c.set_matrix(2, 2, 8, &to_bytes(&[1.0, 0.0, 0.0, 1.0]), da)
            .unwrap();
        c.set_matrix(2, 2, 8, &to_bytes(&[5.0, 6.0, 7.0, 8.0]), db)
            .unwrap();
        c.set_matrix(2, 2, 8, &to_bytes(&[0.0; 4]), dc).unwrap();
        c.dgemm(
            Transpose::N,
            Transpose::N,
            2,
            2,
            2,
            1.0,
            da,
            2,
            db,
            2,
            0.0,
            dc,
            2,
        )
        .unwrap();
        let mut out = vec![0u8; 32];
        c.get_matrix(2, 2, 8, dc, &mut out).unwrap();
        assert_eq!(out, to_bytes(&[5.0, 6.0, 7.0, 8.0]));
    }

    #[test]
    fn thunking_dgemm_matches_host_reference() {
        let c = ctx();
        let a = vec![1.0, 3.0, 2.0, 4.0]; // [1 2; 3 4] col-major
        let b = vec![5.0, 7.0, 6.0, 8.0]; // [5 6; 7 8]
        let mut got = vec![0.0; 4];
        thunking::dgemm(
            &c,
            Transpose::N,
            Transpose::N,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &b,
            2,
            0.0,
            &mut got,
            2,
        )
        .unwrap();
        let mut want = vec![0.0; 4];
        blaskernels::dgemm(
            Transpose::N,
            Transpose::N,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &b,
            2,
            0.0,
            &mut want,
            2,
        );
        assert_eq!(got, want);
    }

    #[test]
    fn thunking_zgemm_matches_host_reference() {
        let c = ctx();
        let n = 4;
        let a: Vec<Complex64> = (0..n * n)
            .map(|i| Complex64::new(i as f64, -(i as f64) / 2.0))
            .collect();
        let b: Vec<Complex64> = (0..n * n)
            .map(|i| Complex64::new(1.0 / (i + 1) as f64, 0.3 * i as f64))
            .collect();
        let mut got = vec![Complex64::ZERO; n * n];
        thunking::zgemm(
            &c,
            Transpose::N,
            Transpose::T,
            n,
            n,
            n,
            Complex64::ONE,
            &a,
            n,
            &b,
            n,
            Complex64::ZERO,
            &mut got,
            n,
        )
        .unwrap();
        let mut want = vec![Complex64::ZERO; n * n];
        blaskernels::zgemm(
            Transpose::N,
            Transpose::T,
            n,
            n,
            n,
            Complex64::ONE,
            &a,
            n,
            &b,
            n,
            Complex64::ZERO,
            &mut want,
            n,
        );
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-9, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn huge_gemm_is_timing_only_but_charges_device_time() {
        let c = ctx();
        let n = 2048;
        let d = c.alloc(1, 8).unwrap(); // placeholder operands, never read
        let rt_clock_before = {
            // launch and then synchronize to observe the device time
            c.dgemm(
                Transpose::N,
                Transpose::N,
                n,
                n,
                n,
                1.0,
                d,
                n,
                d,
                n,
                0.0,
                d,
                n,
            )
            .unwrap();
            c.api.cuda_thread_synchronize().unwrap();
            0.0
        };
        let _ = rt_clock_before;
        // 2*2048^3 flops at ~0.6*515 GF/s → ~56 ms of virtual device time
        // (we can't reach the clock through the trait, so check via ddot
        // which must queue after the gemm on the same stream)
        let dot = c.ddot(1, d, d).unwrap();
        assert_eq!(dot, 0.0);
    }

    #[test]
    fn ddot_returns_real_dot_product() {
        let c = ctx();
        let dx = c.alloc(3, 8).unwrap();
        let dy = c.alloc(3, 8).unwrap();
        c.set_vector(3, 8, &to_bytes(&[1.0, 2.0, 3.0]), dx).unwrap();
        c.set_vector(3, 8, &to_bytes(&[4.0, 5.0, 6.0]), dy).unwrap();
        assert_eq!(c.ddot(3, dx, dy).unwrap(), 32.0);
    }

    #[test]
    fn daxpy_updates_device_vector() {
        let c = ctx();
        let dx = c.alloc(2, 8).unwrap();
        let dy = c.alloc(2, 8).unwrap();
        c.set_vector(2, 8, &to_bytes(&[1.0, 2.0]), dx).unwrap();
        c.set_vector(2, 8, &to_bytes(&[10.0, 20.0]), dy).unwrap();
        c.daxpy(2, 3.0, dx, dy).unwrap();
        let mut out = vec![0u8; 16];
        c.get_vector(2, 8, dy, &mut out).unwrap();
        assert_eq!(out, to_bytes(&[13.0, 26.0]));
    }

    #[test]
    fn gemm_kernel_names_follow_transpose_options() {
        assert_eq!(
            CublasContext::gemm_kernel_name("zgemm", Transpose::N, Transpose::T),
            "zgemm_kernel_NT"
        );
        assert_eq!(
            CublasContext::gemm_kernel_name("dgemm", Transpose::C, Transpose::N),
            "dgemm_kernel_CN"
        );
    }
}
