//! The Amber/PMEMD-like molecular dynamics workload (paper §IV-E, Fig. 11).
//!
//! Models the pre-release CUDA version of PMEMD on the JAC/DHFR benchmark
//! (23,558 atoms, 10,000 steps, 16 GPUs with MPI): a per-timestep loop
//! that launches ~12 kernels from a 39-kernel inventory, updates device
//! constants via `cudaMemcpyToSymbol`, synchronizes with
//! `cudaThreadSynchronize`, fetches small results with synchronous
//! `cudaMemcpy`, and communicates sparsely over MPI. Rank 0 additionally
//! runs the PME grid FFTs through CUFFT (the paper's profile shows CUFFT
//! time concentrated on one task: min 0.00, max 0.86 s).
//!
//! Reproduced observations (Fig. 11):
//! * kernel share ranking: `CalculatePMEOrthogonalNonbondForces` (~37%) >
//!   `ReduceForces` (~18%) > `PMEShake` (~10%) > `ClearForces` (~8%) >
//!   `PMEUpdate` (~7%), the remaining 34 kernels ~20% together;
//! * GPU utilization ≈ 36% of wallclock; `cudaThreadSynchronize` ≈ 22%;
//! * `@CUDA_HOST_IDLE` tiny (~0.1%) despite synchronous transfers —
//!   because they happen right after explicit synchronization;
//! * `ReduceForces`/`ClearForces` imbalanced across ranks by up to 55%,
//!   the others well balanced;
//! * MPI is a trivial fraction (%comm ≈ 0.6).

use crate::cluster::RankCtx;
use ipm_gpu_sim::{launch_kernel, CudaResult, Kernel, KernelArg, KernelCost, LaunchConfig};
use ipm_mpi_sim::ReduceOp;
use ipm_numlib::{FftDirection, FftType};

/// The 33 minor kernels of the PMEMD inventory. With the 5 major kernels
/// and the CUFFT radix kernel on the grid-owning rank, the device runs the
/// paper's 39 distinct kernels.
const MINOR_KERNELS: [&str; 33] = [
    "kNLGenerateSpatialHash",
    "kNLRadixSortCells",
    "kNLBuildNeighborList",
    "kNLSkinTest",
    "kCalculatePMEFillChargeGrid",
    "kCalculatePMEGradSum",
    "kCalculatePMEScalarSum",
    "kCalculateBondedForces",
    "kCalculateAngleForces",
    "kCalculateDihedralForces",
    "kCalculate14Forces",
    "kCalculateUreyBradley",
    "kCalculateImproperForces",
    "kCalculateCMAPForces",
    "kOrientWater",
    "kResetVelocities",
    "kRecenterMolecules",
    "kCalculateKineticEnergy",
    "kCalculateCOM",
    "kCalculateMolecularVirial",
    "kPressureScaleCoordinates",
    "kLocalToGlobal",
    "kGlobalToLocal",
    "kReduceSoluteKE",
    "kClearVirial",
    "kTransposeForces",
    "kPackExchangeBuffer",
    "kUnpackExchangeBuffer",
    "kRandomNumberGen",
    "kLangevinUpdate",
    "kCheckOverlap",
    "kImageAtoms",
    "kMapAtomsToCells",
];

/// Amber/PMEMD workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct AmberConfig {
    /// Timesteps to simulate.
    pub steps: usize,
    /// Atom count (sets data sizes; JAC/DHFR has 23,558).
    pub atoms: usize,
    /// Average device time per step per rank across all kernels (seconds).
    /// JAC/DHFR on 16 C2050s: ~1.65 ms.
    pub gpu_step_seconds: f64,
    /// Host compute before the kernel burst (integration bookkeeping).
    pub host_pre_seconds: f64,
    /// Host compute overlapping the kernel burst.
    pub host_overlap_seconds: f64,
    /// Peak-to-trough imbalance of the imbalanced kernels
    /// (`ReduceForces`, `ClearForces`): paper reports up to 55%.
    pub imbalance: f64,
}

impl AmberConfig {
    /// The paper's JAC/DHFR setup (10,000 steps, 16 ranks).
    pub fn jac_dhfr() -> Self {
        Self {
            steps: 10_000,
            atoms: 23_558,
            gpu_step_seconds: 1.65e-3,
            host_pre_seconds: 2.55e-3,
            host_overlap_seconds: 0.62e-3,
            imbalance: 0.55,
        }
    }

    /// A short run for tests (same per-step structure).
    pub fn tiny() -> Self {
        Self {
            steps: 120,
            ..Self::jac_dhfr()
        }
    }
}

/// The five dominant kernels and their share of per-step GPU time.
/// `ReduceForces`/`ClearForces` carry *pre-imbalance* bases: after the
/// per-rank imbalance multiplier (mean 0.725 at the paper's 55% spread)
/// their cluster-wide shares land on the paper's 18% and 8%.
const MAJOR_SHARES: [(&str, f64); 5] = [
    ("CalculatePMEOrthogonalNonbondForces", 0.37),
    ("ReduceForces", 0.248),
    ("PMEShake", 0.10),
    ("ClearForces", 0.110),
    ("PMEUpdate", 0.07),
];

/// Minor kernels launched per step (rotating through the inventory).
const MINORS_PER_STEP: usize = 7;

/// Per-rank outcome.
#[derive(Clone, Copy, Debug)]
pub struct AmberResult {
    /// Accumulated "energy" observable (deterministic).
    pub energy: f64,
    /// Virtual runtime.
    pub seconds: f64,
}

/// Run the PMEMD-like MD loop on one rank.
pub fn run_amber(ctx: &mut RankCtx, cfg: AmberConfig) -> CudaResult<AmberResult> {
    let p = ctx.nranks;
    let rank = ctx.rank;
    let start = ctx.clock.now();

    // startup: device discovery (the expensive first CUDA call — the
    // paper's profile shows cudaGetDeviceCount absorbing context init)
    ctx.cuda.cuda_get_device_count()?;
    ctx.cuda.cuda_get_device_count()?;
    ctx.cuda.cuda_set_device(0)?;

    // atom data upload + initial exchange of atom ownership
    let atoms_local = cfg.atoms / p + 1;
    let d_crd = ctx.cuda.cuda_malloc(atoms_local * 3 * 8)?;
    let d_frc = ctx.cuda.cuda_malloc(atoms_local * 3 * 8)?;
    ctx.cuda
        .cuda_memcpy_h2d(d_crd, &vec![0u8; atoms_local * 3 * 8])?;
    ctx.mpi
        .mpi_allgather(&vec![0u8; atoms_local * 4])
        .expect("atom ids");

    // rank 0 owns the PME grid FFT (CUFFT)
    let fft_plan = if rank == 0 {
        let plan = ctx.fft.cufft_plan_1d(4096, FftType::Z2Z, 1)?;
        Some((plan, ctx.cuda.cuda_malloc(4096 * 16)?))
    } else {
        None
    };

    // per-rank multiplier for the imbalanced kernels
    let imb = |base: f64| -> f64 {
        if p == 1 {
            base
        } else {
            base * (1.0 - cfg.imbalance * rank as f64 / (p - 1) as f64)
        }
    };
    // minor kernels contribute the paper's ~20% of GPU time; the majors'
    // pre-imbalance bases overshoot 80% by design (see MAJOR_SHARES) and
    // come back down once the imbalance multiplier applies
    let minor_each = cfg.gpu_step_seconds * 0.20 / MINORS_PER_STEP as f64;

    let mut energy = 0.0f64;
    let mut result_buf = vec![0u8; 1024];
    for step in 0..cfg.steps {
        // integration bookkeeping on the host
        ctx.compute(cfg.host_pre_seconds);

        // update device constants (synchronous, but the device is idle
        // here so no implicit blocking is incurred)
        ctx.cuda
            .cuda_memcpy_to_symbol("cSim", &vec![0u8; 1 << 12])?;
        ctx.cuda
            .cuda_memcpy_to_symbol("cNTPData", &vec![0u8; 256])?;

        // the kernel burst: 5 majors + a rotating set of minors
        for (name, share) in MAJOR_SHARES {
            let base = cfg.gpu_step_seconds * share;
            let dur = match name {
                "ReduceForces" | "ClearForces" => imb(base),
                _ => base,
            };
            let k = Kernel::timed(name, KernelCost::Fixed(dur));
            launch_kernel(
                ctx.cuda.as_ref(),
                &k,
                LaunchConfig::simple((atoms_local / 128 + 1) as u32, 128u32),
                &[KernelArg::Ptr(d_crd)],
            )?;
        }
        for j in 0..MINORS_PER_STEP {
            let name = MINOR_KERNELS[(step * MINORS_PER_STEP + j) % MINOR_KERNELS.len()];
            let k = Kernel::timed(name, KernelCost::Fixed(minor_each));
            launch_kernel(
                ctx.cuda.as_ref(),
                &k,
                LaunchConfig::simple((atoms_local / 256 + 1) as u32, 256u32),
                &[KernelArg::Ptr(d_frc)],
            )?;
        }
        ctx.cuda.cuda_get_last_error();

        // PME grid FFT on the grid-owning rank
        if let Some((plan, d_grid)) = fft_plan {
            ctx.fft
                .cufft_exec_z2z(plan, d_grid, d_grid, FftDirection::Forward)?;
            ctx.fft
                .cufft_exec_z2z(plan, d_grid, d_grid, FftDirection::Inverse)?;
        }

        // host work overlapping the GPU burst
        ctx.compute(cfg.host_overlap_seconds);
        ctx.cuda.cuda_get_last_error();

        // wait for the step's kernels (the 22% of Fig. 11)
        ctx.cuda.cuda_thread_synchronize()?;

        // ranks with lighter Reduce/Clear kernels own more of the host-side
        // bookkeeping (PMEMD balances *total* load, not GPU share): without
        // this, imbalance would pile up as MPI wait — the paper's %comm is
        // only 0.6%, so the slack is absorbed on the host
        let imbalanced_base = cfg.gpu_step_seconds * (0.248 + 0.110);
        let slack = imbalanced_base
            - (imb(cfg.gpu_step_seconds * 0.248) + imb(cfg.gpu_step_seconds * 0.110));
        ctx.compute(slack);

        // fetch per-step results (synchronous D2H right after the sync:
        // this is why host idle stays tiny despite blocking transfers)
        ctx.cuda.cuda_memcpy_d2h(&mut result_buf, d_frc)?;
        ctx.cuda.cuda_memcpy_d2h(&mut result_buf[..256], d_crd)?;
        energy += result_buf[0] as f64 + step as f64 * 1e-9;

        // sparse communication: energies every 16 steps, neighbor
        // exchange alongside, a parameter broadcast every 200 steps
        if step % 16 == 15 {
            let e = ctx
                .mpi
                .mpi_allreduce_f64(&[energy; 13], ReduceOp::Sum)
                .expect("energies");
            energy = e[0] / p as f64;
            let nbr = (rank + 1) % p;
            if p > 1 {
                if rank.is_multiple_of(2) {
                    ctx.mpi
                        .mpi_send(nbr, 3, &vec![0u8; 8192])
                        .expect("exchange send");
                    ctx.mpi.mpi_recv(None, 3).expect("exchange recv");
                } else {
                    ctx.mpi.mpi_recv(None, 3).expect("exchange recv");
                    ctx.mpi
                        .mpi_send(nbr, 3, &vec![0u8; 8192])
                        .expect("exchange send");
                }
            }
        }
        if step % 200 == 199 {
            ctx.mpi.mpi_bcast(0, vec![0u8; 4096]).expect("param bcast");
        }

        // trajectory output: the master rank appends a frame every 100
        // steps (IPM's file-I/O domain shows up in the profile)
        if rank == 0 && step % 100 == 99 {
            use ipm_sim_core::fsio::OpenMode;
            let frame = vec![0u8; cfg.atoms * 12];
            let h = ctx
                .io
                .fopen("/scratch/mdcrd", OpenMode::Append)
                .expect("traj open");
            ctx.io.fwrite(h, &frame).expect("traj write");
            ctx.io.fclose(h).expect("traj close");
        }
    }

    if let Some((plan, d_grid)) = fft_plan {
        ctx.fft.cufft_destroy(plan)?;
        ctx.cuda.cuda_free(d_grid)?;
    }
    ctx.cuda.cuda_free(d_crd)?;
    ctx.cuda.cuda_free(d_frc)?;
    ctx.mpi.mpi_barrier().expect("final barrier");

    Ok(AmberResult {
        energy,
        seconds: ctx.clock.now() - start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, ClusterConfig};
    use ipm_core::ClusterReport;

    fn run(ranks: usize) -> ClusterReport {
        let cfg = ClusterConfig::dirac(ranks, ranks).with_command("pmemd.cuda.MPI");
        let run = run_cluster(&cfg, |ctx| run_amber(ctx, AmberConfig::tiny()).expect("md"));
        ClusterReport::from_profiles(run.profiles, ranks)
    }

    /// Like `run`, but with zero context-init cost: short test runs would
    /// otherwise be dominated by the 1.29 s startup (the full 10,000-step
    /// configuration amortizes it as the paper's does).
    fn run_steady(ranks: usize) -> ClusterReport {
        let mut cfg = ClusterConfig::dirac(ranks, ranks).with_command("pmemd.cuda.MPI");
        cfg.gpu = cfg.gpu.with_context_init(0.0);
        let run = run_cluster(&cfg, |ctx| run_amber(ctx, AmberConfig::tiny()).expect("md"));
        ClusterReport::from_profiles(run.profiles, ranks)
    }

    #[test]
    fn kernel_inventory_is_39_deep() {
        let report = run(2);
        let shares = report.kernel_shares();
        assert_eq!(shares.len(), 39, "kernel inventory: {}", shares.len());
    }

    #[test]
    fn fig11_kernel_ranking() {
        let report = run(2);
        let shares = report.kernel_shares();
        assert_eq!(shares[0].0, "CalculatePMEOrthogonalNonbondForces");
        assert!(
            (shares[0].1 - 0.37).abs() < 0.06,
            "nonbond share {}",
            shares[0].1
        );
        // ReduceForces second (imbalance shrinks it slightly below 18%)
        assert_eq!(shares[1].0, "ReduceForces");
        let shake = shares.iter().find(|(k, _)| k == "PMEShake").unwrap();
        assert!((shake.1 - 0.10).abs() < 0.03);
    }

    #[test]
    fn imbalanced_kernels_show_55_percent_spread() {
        let report = run(4);
        let imb = report.kernel_imbalance();
        let reduce = imb.iter().find(|(k, _)| k == "ReduceForces").unwrap().1;
        let clear = imb.iter().find(|(k, _)| k == "ClearForces").unwrap().1;
        let nonbond = imb
            .iter()
            .find(|(k, _)| k == "CalculatePMEOrthogonalNonbondForces")
            .unwrap()
            .1;
        assert!(
            (reduce - 0.55).abs() < 0.08,
            "ReduceForces imbalance {reduce}"
        );
        assert!((clear - 0.55).abs() < 0.08, "ClearForces imbalance {clear}");
        assert!(nonbond < 0.05, "Nonbond should be balanced: {nonbond}");
    }

    #[test]
    fn gpu_utilization_and_sync_fractions_match_fig11() {
        let report = run_steady(2);
        let util = report.gpu_utilization();
        assert!((0.25..0.48).contains(&util), "gpu utilization {util}");
        let sync_frac = report.time_of("cudaThreadSynchronize") / report.wallclock_total;
        assert!(
            (0.10..0.35).contains(&sync_frac),
            "threadsync fraction {sync_frac}"
        );
    }

    #[test]
    fn host_idle_is_tiny_despite_sync_transfers() {
        let report = run(2);
        let idle = report.host_idle_fraction();
        assert!(idle < 0.01, "host idle fraction {idle}");
        // yet there *are* plenty of synchronous transfers
        assert!(report.count_of("cudaMemcpy(D2H)") > 100);
    }

    #[test]
    fn mpi_fraction_is_small() {
        let report = run(2);
        let comm = report.comm_fraction();
        assert!(comm < 0.05, "comm fraction {comm}");
        assert!(report.count_of("MPI_Allreduce") > 0);
        assert!(report.count_of("MPI_Bcast").is_multiple_of(2));
    }

    #[test]
    fn cufft_time_is_concentrated_on_rank_zero() {
        let report = run(4);
        let per_rank: Vec<f64> = report
            .profiles()
            .iter()
            .map(|p| p.family_time(ipm_core::EventFamily::Cufft))
            .collect();
        assert!(per_rank[0] > 0.0, "rank 0 ran no FFTs");
        for (r, t) in per_rank.iter().enumerate().skip(1) {
            assert_eq!(*t, 0.0, "rank {r} unexpectedly ran FFTs");
        }
    }

    #[test]
    fn memcpy_to_symbol_present_in_profile() {
        let report = run(2);
        assert!(report.count_of("cudaMemcpyToSymbol") >= 2 * 120);
        assert!(report.count_of("cudaGetLastError") > 0);
    }
}
