//! The HPL-like CUDA-accelerated Linpack workload.
//!
//! Models Fatica's CUDA-accelerated High Performance Linpack (paper
//! §IV-B/C, Figs. 8 and 9): a right-looking blocked LU factorization,
//! 1-D column-block distributed over the ranks, with the panel factored
//! on the CPU, broadcast, and the trailing update offloaded to the GPU
//! through the four kernels the paper observes in Fig. 9
//! (`dgemm_nn_e_kernel`, `dgemm_nt_tex_kernel`, `dtrsm_gpu_64_mm`,
//! `transpose`). Matching the paper's observations:
//!
//! * transfers are **asynchronous** (pinned rate) → `@CUDA_HOST_IDLE ≈ 0`;
//! * the host overlaps panel work with the GPU update and synchronizes
//!   manually via the event API → a few seconds per rank in
//!   `cudaEventSynchronize`;
//! * computation is well balanced across ranks.

use crate::cluster::RankCtx;
use ipm_gpu_sim::{launch_kernel, CudaResult, Dim3, Kernel, KernelArg, KernelCost, LaunchConfig};
use ipm_sim_core::model::{CpuComputeModel, GpuComputeModel};

/// HPL workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct HplConfig {
    /// Global matrix order.
    pub n: usize,
    /// Panel width.
    pub nb: usize,
    /// Fraction of the GPU update the host overlaps with its own panel
    /// work before `cudaEventSynchronize` (0.97 reproduces the paper's
    /// 2–5 s of event-sync time per rank over a ~126 s run).
    pub overlap: f64,
}

impl HplConfig {
    /// The paper's Fig. 8 configuration: 16 nodes of Dirac, ~126 s mean
    /// runtime.
    pub fn dirac16() -> Self {
        Self {
            n: 97_280,
            nb: 512,
            overlap: 0.97,
        }
    }

    /// A small, fast instance for tests.
    pub fn tiny() -> Self {
        Self {
            n: 4_096,
            nb: 256,
            overlap: 0.9,
        }
    }

    fn iterations(&self) -> usize {
        self.n / self.nb
    }
}

/// Per-rank result summary.
#[derive(Clone, Copy, Debug)]
pub struct HplResult {
    /// Flops this rank executed on its GPU.
    pub gpu_flops: f64,
    /// Virtual runtime of this rank.
    pub seconds: f64,
}

impl HplResult {
    /// Achieved GFLOP/s on this rank.
    pub fn gflops(&self) -> f64 {
        self.gpu_flops / self.seconds / 1e9
    }
}

/// Run the HPL-like solver on one rank of a cluster.
pub fn run_hpl(ctx: &mut RankCtx, cfg: HplConfig) -> CudaResult<HplResult> {
    let p = ctx.nranks;
    let rank = ctx.rank;
    let gpu_model = GpuComputeModel::tesla_c2050();
    let cpu_model = CpuComputeModel::xeon_5530_core();
    let gemm_eff = 0.6;
    let start = ctx.clock.now();

    // device working set: panel + local trailing matrix tile
    let panel_bytes = (self::buf_cap(cfg.nb * cfg.nb * 8)).max(4096);
    let d_panel = ctx.cuda.cuda_malloc(panel_bytes)?;
    let d_tile = ctx.cuda.cuda_malloc(panel_bytes)?;
    let stream = ctx.cuda.cuda_stream_create()?;
    let ev = ctx.cuda.cuda_event_create()?;
    let panel_host = vec![0u8; panel_bytes];
    let mut swap_buf = vec![0u8; cfg.nb * 8];

    let mut gpu_flops = 0.0f64;
    let iters = cfg.iterations();
    for k in 0..iters {
        let rows = cfg.n - (k + 1) * cfg.nb;
        // columns this rank still owns in the trailing submatrix
        let trailing_cols = cfg.n - (k + 1) * cfg.nb;
        let my_cols = trailing_cols / p + usize::from(rank < trailing_cols % p);
        let owner = k % p;

        // 1. the panel for step k was factored during step k-1's GPU
        //    update (HPL's lookahead) — only the pivoting epilogue sits on
        //    the critical path here
        if rank == owner {
            ctx.compute(cpu_model.compute_time(cfg.nb as f64 * cfg.nb as f64, 0.8));
        }

        // 2. broadcast the factored panel
        let bcast_bytes = (rows.min(8192) + cfg.nb) * cfg.nb / 64 * 8; // compressed panel slice
        ctx.mpi
            .mpi_bcast(owner, vec![0u8; bcast_bytes.max(64)])
            .expect("panel bcast");

        if rows == 0 || my_cols == 0 {
            continue;
        }

        // 3. upload panel asynchronously (pinned) and update on the GPU
        ctx.cuda
            .cuda_memcpy_h2d_async(d_panel, &panel_host, stream)?;

        let transpose = Kernel::timed(
            "transpose",
            KernelCost::Fixed(gpu_model.kernel_time(0.0, (cfg.nb * cfg.nb * 16) as f64, 0.5)),
        );
        launch_kernel(
            ctx.cuda.as_ref(),
            &transpose,
            LaunchConfig::simple(
                Dim3::xy(cfg.nb as u32 / 16, cfg.nb as u32 / 16),
                Dim3::xy(16, 16),
            )
            .on_stream(stream),
            &[KernelArg::Ptr(d_panel)],
        )?;

        let trsm_flops = cfg.nb as f64 * cfg.nb as f64 * my_cols as f64;
        let dtrsm = Kernel::timed(
            "dtrsm_gpu_64_mm",
            KernelCost::Fixed(gpu_model.kernel_time(trsm_flops, 0.0, gemm_eff * 0.6)),
        );
        launch_kernel(
            ctx.cuda.as_ref(),
            &dtrsm,
            LaunchConfig::simple((my_cols.max(64) / 64) as u32, 64u32).on_stream(stream),
            &[KernelArg::Ptr(d_panel), KernelArg::Ptr(d_tile)],
        )?;

        let gemm_flops = 2.0 * rows as f64 * my_cols as f64 * cfg.nb as f64;
        let gemm_time = gpu_model.kernel_time(gemm_flops, 0.0, gemm_eff);
        let gemm_name = if k % 4 == 3 {
            "dgemm_nt_tex_kernel"
        } else {
            "dgemm_nn_e_kernel"
        };
        let dgemm = Kernel::timed(gemm_name, KernelCost::Fixed(gemm_time));
        launch_kernel(
            ctx.cuda.as_ref(),
            &dgemm,
            LaunchConfig::simple(
                Dim3::xy((rows / 64).max(1) as u32, (my_cols / 16).max(1) as u32),
                Dim3::xy(16, 16),
            )
            .on_stream(stream),
            &[KernelArg::Ptr(d_panel), KernelArg::Ptr(d_tile)],
        )?;
        gpu_flops += gemm_flops + trsm_flops;

        ctx.cuda.cuda_event_record(ev, stream)?;

        // 4. overlap (lookahead): the next panel's factorization runs on
        //    the host while the GPU updates the trailing matrix, capped at
        //    `overlap` of the GPU time so the event sync below keeps the
        //    residual the paper observes (2-5 s per rank over the run)
        let next_panel_flops = cfg.nb as f64 * cfg.nb as f64 * rows as f64;
        let lookahead = cpu_model
            .compute_time(next_panel_flops, 0.8)
            .min(gemm_time * cfg.overlap);
        ctx.compute(lookahead.max(gemm_time * (cfg.overlap - 0.05)));
        let partner = rank ^ 1;
        if partner < p {
            if rank < partner {
                ctx.mpi
                    .mpi_send(partner, k as i32, &swap_buf)
                    .expect("swap send");
                let (_, data) = ctx
                    .mpi
                    .mpi_recv(Some(partner), k as i32)
                    .expect("swap recv");
                swap_buf.copy_from_slice(&data);
            } else {
                let (_, data) = ctx
                    .mpi
                    .mpi_recv(Some(partner), k as i32)
                    .expect("swap recv");
                ctx.mpi
                    .mpi_send(partner, k as i32, &data)
                    .expect("swap send");
            }
        }

        // 5. manual synchronization via the event API (HPL's style: the
        //    residual, non-overlapped GPU time lands here)
        ctx.cuda.cuda_event_synchronize(ev)?;

        // 6. occasionally fetch factored data back (async + stream sync)
        if k % 8 == 7 {
            let mut out = vec![0u8; 4096];
            ctx.cuda.cuda_memcpy_d2h_async(&mut out, d_tile, stream)?;
            ctx.cuda.cuda_stream_synchronize(stream)?;
        }
    }

    // final result fetch
    let mut out = vec![0u8; panel_bytes];
    ctx.cuda.cuda_memcpy_d2h_async(&mut out, d_tile, stream)?;
    ctx.cuda.cuda_stream_synchronize(stream)?;
    ctx.cuda.cuda_event_destroy(ev)?;
    ctx.cuda.cuda_stream_destroy(stream)?;
    ctx.cuda.cuda_free(d_panel)?;
    ctx.cuda.cuda_free(d_tile)?;
    ctx.mpi.mpi_barrier().expect("final barrier");

    Ok(HplResult {
        gpu_flops,
        seconds: ctx.clock.now() - start,
    })
}

/// Clamp device buffer sizes to something the 3 GiB heap holds comfortably
/// even with many ranks per node.
fn buf_cap(bytes: usize) -> usize {
    bytes.min(64 << 20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, ClusterConfig};
    use ipm_core::{ClusterReport, EventFamily};

    fn run_tiny(ranks: usize) -> (ClusterReport, Vec<HplResult>) {
        let cfg = ClusterConfig::dirac(ranks, ranks).with_command("xhpl.cuda");
        let run = run_cluster(&cfg, |ctx| run_hpl(ctx, HplConfig::tiny()).expect("hpl"));
        let report = ClusterReport::from_profiles(run.profiles.clone(), ranks);
        (report, run.outputs)
    }

    #[test]
    fn fig9_kernel_inventory() {
        let (report, _) = run_tiny(4);
        let kernels: Vec<String> = report.kernel_shares().into_iter().map(|(k, _)| k).collect();
        // the four kernels the paper observes in Fig. 9
        for expected in [
            "dgemm_nn_e_kernel",
            "dgemm_nt_tex_kernel",
            "dtrsm_gpu_64_mm",
            "transpose",
        ] {
            assert!(
                kernels.contains(&expected.to_owned()),
                "missing kernel {expected}"
            );
        }
        // dgemm_nn dominates
        assert_eq!(report.kernel_shares()[0].0, "dgemm_nn_e_kernel");
    }

    #[test]
    fn host_idle_is_negligible_thanks_to_async_transfers() {
        let (report, _) = run_tiny(4);
        let idle = report.host_idle_fraction();
        assert!(idle < 0.01, "host idle fraction {idle}");
    }

    #[test]
    fn event_synchronize_absorbs_residual_gpu_time() {
        let (report, _) = run_tiny(4);
        let sync = report.time_of("cudaEventSynchronize");
        assert!(sync > 0.0, "no manual synchronization observed");
        // it is a visible but modest fraction of the run, like the paper's
        // 2-5 s per task out of ~126 s
        let frac = sync / report.wallclock_total;
        assert!(frac < 0.2, "event sync fraction {frac}");
    }

    #[test]
    fn computation_is_well_balanced() {
        let (report, _) = run_tiny(4);
        for (kernel, imb) in report.kernel_imbalance() {
            if kernel.starts_with("dgemm_nn") {
                assert!(imb < 0.25, "kernel {kernel} imbalance {imb}");
            }
        }
    }

    #[test]
    fn gpu_does_most_of_the_flops() {
        let (report, results) = run_tiny(2);
        let total_flops: f64 = results.iter().map(|r| r.gpu_flops).sum();
        // 2/3 n^3 for LU; the GPU executes the trailing updates (the bulk)
        let lu_flops = 2.0 / 3.0 * (4096.0f64).powi(3);
        assert!(
            total_flops > 0.5 * lu_flops,
            "gpu flops {total_flops} vs LU {lu_flops}"
        );
        assert!(report.family_spread(EventFamily::GpuExec).total > 0.0);
        for r in &results {
            assert!(r.gflops() > 1.0, "implausibly slow: {} GF/s", r.gflops());
        }
    }

    #[test]
    fn unmonitored_run_matches_monitored_within_fraction_of_percent() {
        let cfg = HplConfig::tiny();
        let mon = run_cluster(&ClusterConfig::dirac(2, 2), |ctx| {
            run_hpl(ctx, cfg).expect("hpl").seconds
        });
        let bare = run_cluster(&ClusterConfig::dirac(2, 2).unmonitored(), |ctx| {
            run_hpl(ctx, cfg).expect("hpl").seconds
        });
        let dil = (mon.runtime() - bare.runtime()) / bare.runtime();
        assert!(dil >= 0.0, "monitoring made the run faster? {dil}");
        assert!(dil < 0.02, "dilatation {dil} too large");
    }
}
