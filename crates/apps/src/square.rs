//! The `square` microbenchmark — Fig. 3 of the paper, verbatim.
//!
//! Allocates an array of `N` doubles, copies it to the device, runs a
//! kernel that repeatedly squares each element (one CUDA block per
//! element, `REPEAT` iterations), and copies the result back. Under IPM
//! this produces the banner profiles of Figs. 4–6.

use ipm_gpu_sim::{
    launch_kernel, memcpy_d2h_f64, memcpy_h2d_f64, CudaApi, CudaResult, Kernel, KernelArg,
    KernelCost, LaunchConfig,
};

/// Parameters of the Fig. 3 program.
#[derive(Clone, Copy, Debug)]
pub struct SquareConfig {
    /// Array length (`N = 100000` in the paper).
    pub n: usize,
    /// Squaring iterations per thread (`REPEAT = 10000`).
    pub repeat: u32,
}

impl Default for SquareConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            repeat: 10_000,
        }
    }
}

impl SquareConfig {
    /// A small instance whose results are verified exactly.
    pub fn tiny() -> Self {
        Self { n: 64, repeat: 2 }
    }

    /// Duration of the kernel on the Fig. 5 testbed (~1.15 s for the
    /// default shape): one block per element, `repeat` dependent FMAs.
    fn kernel_cost(&self) -> KernelCost {
        // each "iteration" is a multiply + a conditional: ~2 flops and a
        // 16-byte round trip per element per iteration at low efficiency
        // (one thread per block wastes the SM warp slots — this is what
        // makes the paper's toy kernel so slow)
        KernelCost::Roofline {
            flops_per_thread: 2.0 * self.repeat as f64,
            bytes_per_thread: 0.0,
            efficiency: 0.0034,
        }
    }

    /// Total squaring operations — used to decide whether the semantic
    /// effect is applied for real (see [`run_square`]).
    fn total_ops(&self) -> u64 {
        self.n as u64 * self.repeat as u64
    }
}

/// Above this many element-iterations the kernel is timing-only (repeated
/// squaring of 1e9 elements would swamp wall time and overflow to ±inf
/// anyway; small instances verify the real math).
const EXACT_OPS_LIMIT: u64 = 10_000_000;

/// Run the Fig. 3 program against any CUDA API; returns the squared array.
pub fn run_square(api: &dyn CudaApi, cfg: SquareConfig) -> CudaResult<Vec<f64>> {
    let n = cfg.n;
    let size = n * std::mem::size_of::<f64>();
    let a_h: Vec<f64> = (0..n).map(|i| (i % 97) as f64 / 7.0).collect();

    let a_d = api.cuda_malloc(size)?;
    memcpy_h2d_f64(api, a_d, &a_h)?;

    let repeat = cfg.repeat;
    let kernel = if cfg.total_ops() <= EXACT_OPS_LIMIT {
        Kernel::with_effect("square", cfg.kernel_cost(), move |ctx| {
            let ptr = ctx.args[0].as_ptr().expect("array pointer");
            let len = ctx.args[1].as_i32().expect("N") as usize;
            ctx.heap
                .map_f64(ptr, len, |_, v| {
                    let mut x = v;
                    for _ in 0..repeat {
                        x = x * x;
                    }
                    x
                })
                .expect("square effect");
        })
    } else {
        Kernel::timed("square", cfg.kernel_cost())
    };

    launch_kernel(
        api,
        &kernel,
        LaunchConfig::simple(n as u32, 1u32),
        &[KernelArg::Ptr(a_d), KernelArg::I32(n as i32)],
    )?;

    let mut out = vec![0.0f64; n];
    memcpy_d2h_f64(api, &mut out, a_d)?;
    api.cuda_free(a_d)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_gpu_sim::{GpuConfig, GpuRuntime};

    #[test]
    fn tiny_instance_really_squares() {
        let rt = GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0));
        let out = run_square(&rt, SquareConfig::tiny()).unwrap();
        // repeat=2: v -> v^2 -> v^4
        for (i, &v) in out.iter().enumerate() {
            let x = (i % 97) as f64 / 7.0;
            let want = x.powi(4);
            assert!(
                (v - want).abs() <= 1e-9 * want.abs().max(1.0),
                "index {i}: got {v}, want {want}"
            );
        }
    }

    #[test]
    fn default_shape_takes_about_a_second_on_the_device() {
        // Fig. 5: @CUDA_EXEC_STRM00 ≈ 1.15 s for N=100k, REPEAT=10k.
        // The kernel effect at this size is too slow to apply for real, so
        // use the timed path via a pure-timing clone of the cost model.
        let rt = GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0));
        let cfg = SquareConfig::default();
        let k = ipm_gpu_sim::Kernel::timed("square", cfg.kernel_cost());
        launch_kernel(&rt, &k, LaunchConfig::simple(cfg.n as u32, 1u32), &[]).unwrap();
        rt.thread_synchronize().unwrap();
        let t = rt.clock().now();
        assert!((0.8..1.6).contains(&t), "square kernel modeled at {t}s");
    }
}
