//! The PARATEC-like plane-wave DFT workload (paper §IV-D, Fig. 10).
//!
//! PARATEC performs ab-initio DFT total-energy calculations with
//! pseudopotentials and a plane-wave basis; computationally it is
//! dominated by `zgemm` (double-complex GEMM) on wavefunction blocks,
//! 3-D FFTs, and MPI reductions/gathers. The paper links it against the
//! **thunking** CUBLAS wrappers — every `zgemm` pays blocking
//! `cublasSetMatrix`/`cublasGetMatrix` transfers, which is exactly what
//! IPM's profile exposes (transfer time dwarfing compute).
//!
//! Reproduced observations (Fig. 10):
//! * CUBLAS accelerates the whole application by ~35% over host MKL;
//! * transfer time (`cublasSetMatrix`/`GetMatrix`) ≫ `zgemm` kernel time;
//! * scaling is good to 128 ranks, then `MPI_Gather` (linear in ranks)
//!   starts to dominate;
//! * CUBLAS time per rank stays roughly constant as ranks increase
//!   (shared GPUs, but shrinking per-rank datasets).

use crate::cluster::RankCtx;
use ipm_gpu_sim::CudaResult;
use ipm_mpi_sim::ReduceOp;
use ipm_numlib::{Complex64, Transpose};

/// Which BLAS backs the wavefunction updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlasBackend {
    /// Sequential host "MKL" — the unaccelerated baseline.
    HostMkl,
    /// CUBLAS through the Fortran thunking wrappers (alloc + transfer +
    /// kernel + transfer + free per call).
    CublasThunking,
}

/// PARATEC workload parameters (the NERSC-6 "medium" shape, scaled).
#[derive(Clone, Copy, Debug)]
pub struct ParatecConfig {
    /// Number of electronic bands (GEMM dimension m = n).
    pub nbands: usize,
    /// Plane-wave coefficients per band, global (GEMM k dimension is
    /// `npw / nranks` — the per-rank dataset shrinks with scale).
    pub npw: usize,
    /// SCF iterations.
    pub iterations: usize,
    /// zgemm calls per iteration.
    pub gemms_per_iter: usize,
    /// FFT batches per iteration (host FFTW-style, stays on the CPU).
    pub ffts_per_iter: usize,
    /// Bytes each rank contributes to each `MPI_Gather`
    /// (fixed per rank → root cost grows linearly with ranks).
    pub gather_bytes: usize,
    /// Gathers per iteration (coefficient collection to the root).
    pub gathers_per_iter: usize,
    /// Non-BLAS DFT work per iteration, in *total rank-seconds across the
    /// job* (each rank gets `1/nranks` of it — strong scaling).
    pub other_work_per_iter: f64,
    /// BLAS backend.
    pub backend: BlasBackend,
}

impl ParatecConfig {
    /// The Fig. 10 configuration (medium problem, 32 Dirac nodes).
    /// Calibrated so that at 32 ranks the MKL run takes ~1976 s and the
    /// thunking-CUBLAS run ~1285 s (the paper's numbers), with transfer
    /// time dwarfing zgemm compute.
    pub fn nersc6_medium(backend: BlasBackend) -> Self {
        Self {
            nbands: 160,
            npw: 1 << 22,
            iterations: 25,
            gemms_per_iter: 10,
            ffts_per_iter: 8,
            gather_bytes: 1 << 20,
            gathers_per_iter: 64,
            other_work_per_iter: 1446.0,
            backend,
        }
    }

    /// A small, fast instance whose numerics are verified exactly.
    pub fn tiny(backend: BlasBackend) -> Self {
        Self {
            nbands: 8,
            npw: 256,
            iterations: 2,
            gemms_per_iter: 2,
            ffts_per_iter: 1,
            gather_bytes: 512,
            gathers_per_iter: 1,
            other_work_per_iter: 0.0,
            backend,
        }
    }
}

/// Per-rank outcome.
#[derive(Clone, Debug)]
pub struct ParatecResult {
    /// Final "total energy" (a deterministic reduction over the
    /// wavefunction products; identical on all ranks).
    pub energy: f64,
    /// Virtual runtime of this rank.
    pub seconds: f64,
}

/// Run the PARATEC-like SCF loop on one rank.
pub fn run_paratec(ctx: &mut RankCtx, cfg: ParatecConfig) -> CudaResult<ParatecResult> {
    let p = ctx.nranks;
    let m = cfg.nbands;
    let k = (cfg.npw / p).max(1);
    // physical wavefunction extent: full at verification scale, a prefix
    // at paper scale (transfers/kernels are then timing-modeled)
    let k_phys = k.min(4096.max(m));
    let start = ctx.clock.now();

    // wavefunction block: k plane waves x m bands (column-major), complex
    let mut psi: Vec<Complex64> = (0..k_phys * m)
        .map(|i| {
            let x = ((i * 2654435761usize) % 1000) as f64 / 1000.0 - 0.5;
            Complex64::new(x, -x / 3.0)
        })
        .collect();
    let hpsi: Vec<Complex64> = (0..k_phys * m)
        .map(|i| Complex64::new(((i % 31) as f64) / 31.0, 0.1))
        .collect();
    let mut overlap = vec![Complex64::ZERO; m * m];
    let mut energy = 0.0f64;

    for _iter in 0..cfg.iterations {
        ctx.region_enter("scf");
        // 1. subspace overlap matrices: zgemm (C = psi^H * hpsi), the
        //    dominant BLAS call, through the configured backend
        for _g in 0..cfg.gemms_per_iter {
            match cfg.backend {
                BlasBackend::HostMkl => {
                    ctx.host_blas.zgemm(
                        Transpose::C,
                        Transpose::N,
                        m,
                        m,
                        k,
                        Complex64::ONE,
                        &psi,
                        k,
                        &hpsi,
                        k,
                        Complex64::ZERO,
                        &mut overlap,
                        m,
                    );
                }
                BlasBackend::CublasThunking => {
                    thunking_zgemm(ctx, m, k, k_phys, &psi, &hpsi, &mut overlap)?;
                }
            }
        }

        // 2. FFTs between reciprocal and real space (host FFTW)
        for _f in 0..cfg.ffts_per_iter {
            let fft_len = k.min(16 * 1024).next_power_of_two().min(psi.len());
            let mut scratch: Vec<Complex64> = psi[..fft_len].to_vec();
            if scratch.len().is_power_of_two() && scratch.len() > 1 {
                let host_fft = ipm_numlib::HostFft::new(
                    ctx.clock.clone(),
                    ipm_numlib::HostLibConfig::default(),
                );
                host_fft.execute(&mut scratch, ipm_numlib::FftDirection::Forward);
            }
        }

        // 3. nonblocking halo exchange with neighbors, completed by
        //    MPI_Wait (a visible chunk of the paper's MPI time)
        let left = (ctx.rank + p - 1) % p;
        let right = (ctx.rank + 1) % p;
        let halo = vec![0u8; 32 * 1024];
        let mut sreq = ctx.mpi.mpi_isend(right, 7, &halo).expect("halo isend");
        let mut rreq = ctx.mpi.mpi_irecv(Some(left), 7).expect("halo irecv");
        ctx.mpi.mpi_wait(&mut rreq).expect("halo wait");
        ctx.mpi.mpi_wait(&mut sreq).expect("halo wait");

        // 4. energy reduction (allreduce over band energies)
        let local: f64 =
            overlap.iter().take(m).map(|c| c.re).sum::<f64>() / m as f64 + psi[0].re * 1e-3;
        let summed = ctx
            .mpi
            .mpi_allreduce_f64(&[local], ReduceOp::Sum)
            .expect("energy allreduce");
        energy = summed[0];

        // 5. wavefunction coefficients gathered to the root for I/O —
        //    fixed bytes per rank, so the root cost is linear in ranks:
        //    this is what blows up at 256 processes in Fig. 10
        for _g in 0..cfg.gathers_per_iter {
            ctx.mpi
                .mpi_gather(0, &vec![0u8; cfg.gather_bytes])
                .expect("gather");
        }

        // 5b. the remaining DFT machinery (pseudopotentials, density
        //     mixing, ...) — strong-scaled CPU work
        ctx.compute(cfg.other_work_per_iter / p as f64);

        // 6. small orthonormalization update on the CPU
        for (i, v) in psi.iter_mut().enumerate().take(m.min(64)) {
            *v += overlap[i % overlap.len()].scale(1e-6);
        }
        ctx.compute(1e-4);
        ctx.region_exit();
    }

    ctx.mpi.mpi_barrier().expect("final barrier");
    Ok(ParatecResult {
        energy,
        seconds: ctx.clock.now() - start,
    })
}

/// One thunking zgemm: device alloc, blocking set/get transfers, kernel,
/// free — the Fortran wrapper the paper links PARATEC against. When the
/// virtual operand extent `k` exceeds the physical extent `k_phys`, the
/// transfers use the modeled (sized) path: full virtual time and byte
/// accounting, prefix-only data staging.
fn thunking_zgemm(
    ctx: &RankCtx,
    m: usize,
    k: usize,
    k_phys: usize,
    a: &[Complex64],
    b: &[Complex64],
    c: &mut [Complex64],
) -> CudaResult<()> {
    const Z: usize = 16;
    let blas = ctx.blas.as_ref();
    let da = blas.cublas_alloc(k * m, Z)?;
    let db = blas.cublas_alloc(k * m, Z)?;
    let dc = blas.cublas_alloc(m * m, Z)?;
    let bytes = |xs: &[Complex64]| -> Vec<u8> {
        xs.iter()
            .flat_map(|z| [z.re.to_le_bytes(), z.im.to_le_bytes()].concat())
            .collect()
    };
    if k_phys < k {
        // paper scale: stage a 64 KiB prefix, model the full transfer
        let prefix = &bytes(&a[..(4096).min(a.len())]);
        blas.cublas_set_matrix_modeled(k, m, Z, prefix, da)?;
        let prefix_b = &bytes(&b[..(4096).min(b.len())]);
        blas.cublas_set_matrix_modeled(k, m, Z, prefix_b, db)?;
    } else {
        blas.cublas_set_matrix(k, m, Z, &bytes(a), da)?;
        blas.cublas_set_matrix(k, m, Z, &bytes(b), db)?;
    }
    blas.cublas_zgemm(
        Transpose::C,
        Transpose::N,
        m,
        m,
        k,
        Complex64::ONE,
        da,
        k,
        db,
        k,
        Complex64::ZERO,
        dc,
        m,
    )?;
    let mut out = vec![0u8; m * m * Z];
    blas.cublas_get_matrix(m, m, Z, dc, &mut out)?;
    for (i, chunk) in out.chunks_exact(16).enumerate() {
        c[i] = Complex64::new(
            f64::from_le_bytes(chunk[..8].try_into().expect("re")),
            f64::from_le_bytes(chunk[8..].try_into().expect("im")),
        );
    }
    blas.cublas_free(da)?;
    blas.cublas_free(db)?;
    blas.cublas_free(dc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, ClusterConfig};
    use ipm_core::ClusterReport;

    fn run(backend: BlasBackend, ranks: usize) -> (ClusterReport, Vec<ParatecResult>) {
        let cfg = ClusterConfig::dirac(ranks, ranks.min(4)).with_command("paratec");
        let run = run_cluster(&cfg, |ctx| {
            run_paratec(ctx, ParatecConfig::tiny(backend)).expect("scf")
        });
        (
            ClusterReport::from_profiles(run.profiles.clone(), ranks.min(4)),
            run.outputs,
        )
    }

    #[test]
    fn both_backends_compute_the_same_energy() {
        let (_, host) = run(BlasBackend::HostMkl, 2);
        let (_, dev) = run(BlasBackend::CublasThunking, 2);
        assert!(
            (host[0].energy - dev[0].energy).abs() < 1e-9 * host[0].energy.abs().max(1.0),
            "host {} vs cublas {}",
            host[0].energy,
            dev[0].energy
        );
        // and all ranks agree (it came out of an allreduce)
        assert_eq!(host[0].energy, host[1].energy);
    }

    #[test]
    fn thunking_profile_shows_transfers_and_zgemm() {
        let (report, _) = run(BlasBackend::CublasThunking, 2);
        assert!(report.count_of("cublasSetMatrix") > 0);
        assert!(report.count_of("cublasGetMatrix") > 0);
        assert!(report.count_of("cublasZgemm") > 0);
        // internal kernel launches intercepted through the stack
        assert!(report.count_of("cudaLaunch") > 0);
    }

    #[test]
    fn host_backend_emits_no_cublas_events() {
        let (report, _) = run(BlasBackend::HostMkl, 2);
        assert_eq!(report.count_of("cublasZgemm"), 0);
        assert_eq!(report.count_of("cublasSetMatrix"), 0);
        // but MPI is still monitored
        assert!(report.count_of("MPI_Allreduce") > 0);
        assert!(report.count_of("MPI_Gather") > 0);
        assert!(report.count_of("MPI_Wait") > 0);
    }

    #[test]
    fn gather_time_grows_superlinearly_with_ranks() {
        // per-rank gather cost must grow roughly linearly in rank count
        // (the Fig. 10 cliff); compare average per-rank MPI_Gather time
        let (r4, _) = run(BlasBackend::HostMkl, 4);
        let (r8, _) = run(BlasBackend::HostMkl, 8);
        let per_rank4 = r4.time_of("MPI_Gather") / 4.0;
        let per_rank8 = r8.time_of("MPI_Gather") / 8.0;
        assert!(
            per_rank8 > 1.5 * per_rank4,
            "gather did not grow: {per_rank4} -> {per_rank8}"
        );
    }
}
