//! The GPU-cluster harness.
//!
//! Ties the substrates together the way a Dirac job does: `nranks` MPI
//! ranks (OS threads) spread block-wise over `nodes` nodes, one simulated
//! Tesla C2050 per node (shared by the node's ranks), CUBLAS/CUFFT library
//! contexts per rank, and — when monitoring is enabled — a per-rank IPM
//! context whose facades wrap every API the application touches.
//!
//! Applications receive a [`RankCtx`] and program against the `*Api`
//! traits only, so the same application code runs monitored and
//! unmonitored (the paper's no-relink deployment property).

use ipm_core::{
    ClusterSnapshot, Ipm, IpmBlas, IpmConfig, IpmCuda, IpmFft, IpmIo, IpmMpi, RankProfile, Snapshot,
};
use ipm_gpu_sim::{CudaApi, Device, GpuConfig, GpuRuntime};
use ipm_mpi_sim::{MpiApi, World, WorldConfig};
use ipm_numlib::{
    BlasApi, CublasContext, CufftConfig, CufftContext, DeviceLibConfig, FftApi, HostBlas,
    HostLibConfig,
};
use ipm_sim_core::fsio::{FsConfig, IoApi, RankFs, SimFs};
use ipm_sim_core::{NoiseModel, SimClock, SimRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Cluster-run configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// MPI ranks.
    pub nranks: usize,
    /// Nodes; ranks are block-mapped, one GPU per node.
    pub nodes: usize,
    /// Per-node GPU configuration.
    pub gpu: GpuConfig,
    /// IPM configuration; `None` runs unmonitored (the Fig. 8 baseline).
    pub ipm: Option<IpmConfig>,
    /// Command string for the report metadata.
    pub command: String,
    /// Run-level noise (applied to each rank's finished wallclock).
    pub noise: NoiseModel,
    /// Seed for the run-noise draw.
    pub seed: u64,
}

impl ClusterConfig {
    /// A Dirac-like run: `nranks` over `nodes` nodes, monitored with IPM
    /// defaults, no noise.
    pub fn dirac(nranks: usize, nodes: usize) -> Self {
        assert!(
            nodes > 0 && nranks >= nodes,
            "need at least one rank per node"
        );
        Self {
            nranks,
            nodes,
            gpu: GpuConfig::dirac_node(),
            ipm: Some(IpmConfig::default()),
            command: "<app>".to_owned(),
            noise: NoiseModel::QUIET,
            seed: 0x5EED,
        }
    }

    /// Disable monitoring (baseline runs of the dilatation study).
    pub fn unmonitored(mut self) -> Self {
        self.ipm = None;
        self
    }

    /// Override the IPM configuration.
    pub fn with_ipm(mut self, cfg: IpmConfig) -> Self {
        self.ipm = Some(cfg);
        self
    }

    /// Set the command metadata.
    pub fn with_command(mut self, cmd: &str) -> Self {
        self.command = cmd.to_owned();
        self
    }

    /// Enable run-level noise with a seed.
    pub fn with_noise(mut self, noise: NoiseModel, seed: u64) -> Self {
        self.noise = noise;
        self.seed = seed;
        self
    }

    fn ranks_per_node(&self) -> usize {
        self.nranks.div_ceil(self.nodes)
    }
}

/// Everything one rank's application code gets to touch.
pub struct RankCtx {
    pub rank: usize,
    pub nranks: usize,
    pub node: usize,
    pub clock: SimClock,
    /// The (possibly monitored) CUDA runtime API.
    pub cuda: Arc<dyn CudaApi>,
    /// The (possibly monitored) MPI API.
    pub mpi: Arc<dyn MpiApi>,
    /// The (possibly monitored) CUBLAS API, built over `cuda`.
    pub blas: Arc<dyn BlasApi>,
    /// The (possibly monitored) CUFFT API, built over `cuda`.
    pub fft: Arc<dyn FftApi>,
    /// The host "MKL" BLAS (unaccelerated baseline).
    pub host_blas: HostBlas,
    /// The (possibly monitored) file-I/O API over the shared scratch FS.
    pub io: Arc<dyn IoApi>,
    /// Deterministic per-rank RNG for workload generation.
    pub rng: SimRng,
    /// The IPM context (None when unmonitored).
    pub ipm: Option<Arc<Ipm>>,
    cuda_mon: Option<Arc<IpmCuda>>,
}

impl RankCtx {
    /// Enter a named IPM region (no-op when unmonitored).
    pub fn region_enter(&self, name: &str) {
        if let Some(ipm) = &self.ipm {
            ipm.region_enter(name);
        }
    }

    /// Exit the current IPM region.
    pub fn region_exit(&self) {
        if let Some(ipm) = &self.ipm {
            ipm.region_exit();
        }
    }

    /// Model host-side computation for `dt` virtual seconds.
    pub fn compute(&self, dt: f64) {
        self.clock.advance(dt);
    }

    fn finalize(&self) -> Option<RankProfile> {
        if let Some(mon) = &self.cuda_mon {
            mon.finalize();
        }
        self.ipm.as_ref().map(|ipm| ipm.profile())
    }
}

/// Live view of a cluster run in flight, handed to the observer closure of
/// [`run_cluster_observed`]. Ranks register their IPM context as they come
/// up; the observer polls [`ClusterObserver::sample`] for cluster-wide
/// telemetry deltas while the application is still running.
pub struct ClusterObserver {
    ipms: Mutex<Vec<(usize, Arc<Ipm>)>>,
    done: AtomicBool,
    /// EWMA of the wall-clock cost of one [`ClusterObserver::sample`]
    /// sweep, seconds; `None` until the first sweep.
    sample_cost: Mutex<Option<f64>>,
}

/// Bounds for the auto-tuned polling period: even a free snapshot is not
/// polled faster than 1 ms, and even a very expensive one is still polled
/// every few seconds so the dashboard keeps moving.
const MIN_SAMPLE_PERIOD: Duration = Duration::from_millis(1);
const MAX_SAMPLE_PERIOD: Duration = Duration::from_secs(5);

/// The polling period that keeps observer overhead within `budget`: the
/// measured per-sweep cost divided by the budget fraction, clamped to
/// [`MIN_SAMPLE_PERIOD`, `MAX_SAMPLE_PERIOD`]. A 50 µs sweep on a 1%
/// budget polls every 5 ms.
pub fn period_for_budget(sweep_cost: Duration, budget: f64) -> Duration {
    assert!(budget > 0.0, "snapshot budget must be positive");
    let period = sweep_cost.as_secs_f64() / budget;
    Duration::from_secs_f64(period).clamp(MIN_SAMPLE_PERIOD, MAX_SAMPLE_PERIOD)
}

impl ClusterObserver {
    fn new() -> Self {
        Self {
            ipms: Mutex::new(Vec::new()),
            done: AtomicBool::new(false),
            sample_cost: Mutex::new(None),
        }
    }

    fn register(&self, rank: usize, ipm: Arc<Ipm>) {
        self.ipms
            .lock()
            .expect("observer registry poisoned")
            .push((rank, ipm));
    }

    fn finish(&self) {
        self.done.store(true, Ordering::Release);
    }

    /// Ranks that have come up (registered their IPM context) so far.
    pub fn ranks_up(&self) -> usize {
        self.ipms.lock().expect("observer registry poisoned").len()
    }

    /// True once every rank has returned from the application.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Take one telemetry sample: a [`Snapshot`] delta per registered rank,
    /// merged into a cluster-wide view. Returns the merged snapshot plus
    /// the widest per-rank interval (virtual seconds) it covers — the
    /// denominator for busy-fraction displays. `None` until at least one
    /// rank is up, and always `None` for unmonitored runs.
    pub fn sample(&self) -> Option<(ClusterSnapshot, f64)> {
        let ipms: Vec<(usize, Arc<Ipm>)> = self
            .ipms
            .lock()
            .expect("observer registry poisoned")
            .clone();
        if ipms.is_empty() {
            return None;
        }
        let sweep_start = Instant::now();
        let snaps: Vec<Snapshot> = ipms.iter().map(|(_, ipm)| ipm.snapshot()).collect();
        self.record_sweep_cost(sweep_start.elapsed());
        let interval = snaps.iter().map(|s| s.interval).fold(0.0, f64::max);
        Some((ClusterSnapshot::merge(&snaps), interval))
    }

    /// Fold one measured sweep cost into the EWMA (α = 1/4: smooth enough
    /// to ride out scheduler noise, fast enough to track load changes
    /// within a handful of samples).
    fn record_sweep_cost(&self, cost: Duration) {
        let mut ewma = self.sample_cost.lock().expect("sample cost poisoned");
        let cost = cost.as_secs_f64();
        *ewma = Some(match *ewma {
            None => cost,
            Some(prev) => prev + (cost - prev) * 0.25,
        });
    }

    /// The auto-tuned polling period (ROADMAP: sampling-rate auto-tuning):
    /// the EWMA per-sweep cost measured by [`ClusterObserver::sample`]
    /// against the tightest [`IpmConfig::snapshot_overhead_budget`] of the
    /// registered ranks, clamped to sane bounds. `None` until the first
    /// sweep has been measured — callers fall back to a fixed warm-up
    /// period.
    pub fn auto_period(&self) -> Option<Duration> {
        let cost = (*self.sample_cost.lock().expect("sample cost poisoned"))?;
        let budget = self
            .ipms
            .lock()
            .expect("observer registry poisoned")
            .iter()
            .map(|(_, ipm)| ipm.config().snapshot_overhead_budget)
            .fold(f64::INFINITY, f64::min);
        if !budget.is_finite() {
            return None;
        }
        Some(period_for_budget(Duration::from_secs_f64(cost), budget))
    }
}

/// The outcome of a cluster run.
pub struct ClusterRun<R> {
    /// Per-rank application return values (rank order).
    pub outputs: Vec<R>,
    /// Per-rank wallclock, after run-level noise (rank order).
    pub wallclocks: Vec<f64>,
    /// Per-rank IPM profiles (empty when unmonitored).
    pub profiles: Vec<RankProfile>,
}

impl<R> ClusterRun<R> {
    /// Max wallclock over ranks — the job's runtime.
    pub fn runtime(&self) -> f64 {
        self.wallclocks.iter().copied().fold(0.0, f64::max)
    }
}

/// The API facades plus monitor handles one rank's stack is built from,
/// monitored or bare depending on [`ClusterConfig::ipm`].
type RankStack = (
    Arc<dyn CudaApi>,
    Arc<dyn MpiApi>,
    Option<Arc<Ipm>>,
    Option<Arc<IpmCuda>>,
);

/// Run `app` on a simulated cluster. One OS thread per rank.
pub fn run_cluster<R: Send>(
    config: &ClusterConfig,
    app: impl Fn(&mut RankCtx) -> R + Send + Sync,
) -> ClusterRun<R> {
    run_cluster_observed(config, app, |_| {})
}

/// Like [`run_cluster`], but with a live observer: `observe` runs on its
/// own thread concurrently with the ranks and receives a
/// [`ClusterObserver`] for periodic [`ClusterObserver::sample`] calls — the
/// cluster-wide live-telemetry view. The observer should poll
/// [`ClusterObserver::is_done`] and return promptly once it flips.
pub fn run_cluster_observed<R: Send>(
    config: &ClusterConfig,
    app: impl Fn(&mut RankCtx) -> R + Send + Sync,
    observe: impl FnOnce(&ClusterObserver) + Send,
) -> ClusterRun<R> {
    let observer = ClusterObserver::new();
    let rpn = config.ranks_per_node();
    let devices: Vec<Arc<Device>> = (0..config.nodes)
        .map(|node| {
            let d = Device::new(config.gpu.clone());
            // ranks are block-mapped; the last node may hold fewer
            let lo = node * rpn;
            let hi = ((node + 1) * rpn).min(config.nranks);
            d.set_expected_contexts(hi.saturating_sub(lo));
            d
        })
        .collect();
    let world_cfg = WorldConfig::dirac(config.nranks, rpn);
    let world = World::new(world_cfg);
    let scratch_fs = SimFs::new(FsConfig::default());

    let results: Vec<(R, f64, Option<RankProfile>)> = std::thread::scope(|s| {
        let obs = &observer;
        let watcher = s.spawn(move || observe(obs));
        let handles: Vec<_> = (0..config.nranks)
            .map(|r| {
                let world = world.clone();
                let scratch_fs = scratch_fs.clone();
                let device = devices[(r / rpn).min(config.nodes - 1)].clone();
                let app = &app;
                let config = &config;
                let obs = &observer;
                s.spawn(move || {
                    let clock = SimClock::new();
                    let rank = world.rank_with_clock(r, clock.clone());
                    let node = rank.node();
                    let gpu = Arc::new(GpuRuntime::new(device, clock.clone()));
                    let mut rng = SimRng::new(config.seed).fork(r as u64);

                    let (cuda, mpi, ipm, cuda_mon): RankStack = match config.ipm {
                        Some(ipm_cfg) => {
                            let ipm = Ipm::new(clock.clone(), ipm_cfg);
                            ipm.set_metadata(
                                r,
                                config.nranks,
                                &format!("dirac{node:02}"),
                                &config.command,
                            );
                            let mon = Arc::new(IpmCuda::new(ipm.clone(), gpu));
                            let mpi: Arc<dyn MpiApi> = Arc::new(IpmMpi::new(ipm.clone(), rank));
                            (mon.clone() as Arc<dyn CudaApi>, mpi, Some(ipm), Some(mon))
                        }
                        None => (gpu as Arc<dyn CudaApi>, Arc::new(rank), None, None),
                    };
                    if let Some(ipm) = &ipm {
                        obs.register(r, ipm.clone());
                    }

                    let blas_inner = CublasContext::init(cuda.clone(), DeviceLibConfig::default());
                    let fft_inner =
                        Arc::new(CufftContext::new(cuda.clone(), CufftConfig::default()));
                    let (blas, fft): (Arc<dyn BlasApi>, Arc<dyn FftApi>) = match &ipm {
                        Some(ipm) => (
                            Arc::new(IpmBlas::new(ipm.clone(), blas_inner)),
                            Arc::new(IpmFft::new(ipm.clone(), fft_inner)),
                        ),
                        None => (Arc::new(blas_inner), Arc::new(IpmFftLess(fft_inner))),
                    };

                    let rank_fs = RankFs {
                        fs: scratch_fs,
                        clock: clock.clone(),
                    };
                    let io: Arc<dyn IoApi> = match &ipm {
                        Some(ipm) => Arc::new(IpmIo::new(ipm.clone(), rank_fs)),
                        None => Arc::new(rank_fs),
                    };
                    let mut ctx = RankCtx {
                        rank: r,
                        nranks: config.nranks,
                        node,
                        clock: clock.clone(),
                        cuda,
                        mpi,
                        blas,
                        fft,
                        host_blas: HostBlas::new(clock.clone(), HostLibConfig::default()),
                        io,
                        rng: rng.fork(0xA99),
                        ipm,
                        cuda_mon,
                    };
                    let out = app(&mut ctx);
                    let profile = ctx.finalize();
                    let wall = clock.now() * config.noise.run_multiplier(&mut rng);
                    (out, wall, profile)
                })
            })
            .collect();
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect();
        observer.finish();
        watcher.join().expect("observer thread panicked");
        results
    });

    let mut outputs = Vec::with_capacity(results.len());
    let mut wallclocks = Vec::with_capacity(results.len());
    let mut profiles = Vec::new();
    for (out, wall, profile) in results {
        outputs.push(out);
        wallclocks.push(wall);
        if let Some(p) = profile {
            profiles.push(p);
        }
    }
    ClusterRun {
        outputs,
        wallclocks,
        profiles,
    }
}

/// Adapter exposing an unmonitored `CufftContext` as `FftApi` behind an
/// `Arc` (the context itself implements the trait; this just forwards).
struct IpmFftLess(Arc<CufftContext>);

impl FftApi for IpmFftLess {
    fn cufft_plan_1d(
        &self,
        n: usize,
        ty: ipm_numlib::FftType,
        batch: usize,
    ) -> ipm_gpu_sim::CudaResult<ipm_numlib::PlanId> {
        self.0.plan_1d(n, ty, batch)
    }
    fn cufft_set_stream(
        &self,
        plan: ipm_numlib::PlanId,
        stream: ipm_gpu_sim::StreamId,
    ) -> ipm_gpu_sim::CudaResult<()> {
        self.0.set_stream(plan, stream)
    }
    fn cufft_exec_z2z(
        &self,
        plan: ipm_numlib::PlanId,
        idata: ipm_gpu_sim::DevicePtr,
        odata: ipm_gpu_sim::DevicePtr,
        dir: ipm_numlib::FftDirection,
    ) -> ipm_gpu_sim::CudaResult<()> {
        self.0.exec_z2z(plan, idata, odata, dir)
    }
    fn cufft_destroy(&self, plan: ipm_numlib::PlanId) -> ipm_gpu_sim::CudaResult<()> {
        self.0.destroy(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_gpu_sim::{launch_kernel, Kernel, KernelArg, KernelCost, LaunchConfig};
    use ipm_mpi_sim::ReduceOp;

    #[test]
    fn monitored_run_produces_profiles() {
        let cfg = ClusterConfig::dirac(4, 2).with_command("test-app");
        let run = run_cluster(&cfg, |ctx| {
            let d = ctx.cuda.cuda_malloc(1024).unwrap();
            let k = Kernel::timed("work", KernelCost::Fixed(0.1));
            launch_kernel(
                ctx.cuda.as_ref(),
                &k,
                LaunchConfig::simple(8u32, 32u32),
                &[KernelArg::Ptr(d)],
            )
            .unwrap();
            let mut out = vec![0u8; 1024];
            ctx.cuda.cuda_memcpy_d2h(&mut out, d).unwrap();
            ctx.mpi.mpi_allreduce_f64(&[1.0], ReduceOp::Sum).unwrap()[0]
        });
        assert_eq!(run.outputs, vec![4.0; 4]);
        assert_eq!(run.profiles.len(), 4);
        for p in &run.profiles {
            assert_eq!(p.count_of("cudaLaunch"), 1);
            assert_eq!(p.count_of("MPI_Allreduce"), 1);
            assert!(p.time_of("@CUDA_EXEC_STRM00") > 0.09);
            assert_eq!(p.command, "test-app");
        }
        assert!(run.runtime() > 0.1);
    }

    #[test]
    fn unmonitored_run_has_no_profiles_and_is_faster() {
        let app = |ctx: &mut RankCtx| {
            for _ in 0..100 {
                let d = ctx.cuda.cuda_malloc(64).unwrap();
                ctx.cuda.cuda_free(d).unwrap();
            }
        };
        let mon = run_cluster(&ClusterConfig::dirac(2, 1), app);
        let bare = run_cluster(&ClusterConfig::dirac(2, 1).unmonitored(), app);
        assert!(bare.profiles.is_empty());
        assert_eq!(mon.profiles.len(), 2);
        // monitoring dilates the runtime slightly, never shrinks it
        assert!(mon.runtime() >= bare.runtime());
        let dilatation = (mon.runtime() - bare.runtime()) / bare.runtime();
        assert!(dilatation < 0.05, "dilatation {dilatation}");
    }

    #[test]
    fn ranks_on_one_node_share_the_gpu() {
        // two ranks, one node: device kernels serialize across contexts
        let app = |ctx: &mut RankCtx| {
            let k = Kernel::timed("spin", KernelCost::Fixed(0.5));
            launch_kernel(ctx.cuda.as_ref(), &k, LaunchConfig::simple(1u32, 1u32), &[]).unwrap();
            ctx.cuda.cuda_thread_synchronize().unwrap();
            ctx.clock.now()
        };
        let shared = run_cluster(&ClusterConfig::dirac(2, 1).unmonitored(), app);
        let exclusive = run_cluster(&ClusterConfig::dirac(2, 2).unmonitored(), app);
        // with a shared GPU at least one rank waits for the other's kernel
        assert!(
            shared.runtime() >= exclusive.runtime() + 0.4,
            "shared {} vs exclusive {}",
            shared.runtime(),
            exclusive.runtime()
        );
    }

    #[test]
    fn observed_run_samples_live_telemetry() {
        use ipm_core::EventFamily;
        let cfg = ClusterConfig::dirac(2, 1).with_command("observed");
        let samples = Mutex::new(Vec::new());
        let run = run_cluster_observed(
            &cfg,
            |ctx| {
                for _ in 0..50 {
                    let k = Kernel::timed("work", KernelCost::Fixed(0.01));
                    launch_kernel(
                        ctx.cuda.as_ref(),
                        &k,
                        LaunchConfig::simple(8u32, 32u32),
                        &[],
                    )
                    .unwrap();
                    ctx.cuda.cuda_thread_synchronize().unwrap();
                    ctx.mpi.mpi_allreduce_f64(&[1.0], ReduceOp::Sum).unwrap();
                }
            },
            |obs| {
                while !obs.is_done() {
                    if let Some(sample) = obs.sample() {
                        samples.lock().unwrap().push(sample);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                // one last delta: everything booked since the final poll
                if let Some(sample) = obs.sample() {
                    samples.lock().unwrap().push(sample);
                }
            },
        );
        assert_eq!(run.profiles.len(), 2);
        let samples = samples.into_inner().unwrap();
        assert!(!samples.is_empty(), "observer never sampled");
        // deltas are exhaustive: summed across samples they recover the
        // cumulative per-family totals of the final profiles
        let sampled_gpu: f64 = samples
            .iter()
            .filter_map(|(snap, _)| snap.family(EventFamily::GpuExec))
            .map(|spread| spread.total)
            .sum();
        let booked_gpu: f64 = run
            .profiles
            .iter()
            .map(|p| p.family_time(EventFamily::GpuExec))
            .sum();
        assert!(
            booked_gpu > 0.9,
            "workload booked {booked_gpu} s of GPU exec"
        );
        assert!(
            (sampled_gpu - booked_gpu).abs() < 1e-9,
            "sampled {sampled_gpu} vs booked {booked_gpu}"
        );
        // sequence numbers advance monotonically
        let seqs: Vec<u64> = samples.iter().map(|(s, _)| s.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] <= w[1]), "{seqs:?}");
    }

    #[test]
    fn noise_spreads_wallclocks() {
        let cfg = ClusterConfig::dirac(4, 4).unmonitored().with_noise(
            NoiseModel {
                run_sigma: 0.01,
                event_jitter: 0.0,
            },
            42,
        );
        let run = run_cluster(&cfg, |ctx| ctx.compute(100.0));
        let min = run.wallclocks.iter().copied().fold(f64::INFINITY, f64::min);
        let max = run.runtime();
        assert!(max > min, "noise produced identical wallclocks");
        assert!((max - 100.0).abs() < 10.0);
    }

    #[test]
    fn regions_work_through_the_ctx() {
        let run = run_cluster(&ClusterConfig::dirac(1, 1), |ctx| {
            ctx.region_enter("phase1");
            ctx.mpi.mpi_barrier().unwrap();
            ctx.region_exit();
        });
        let p = &run.profiles[0];
        assert!(p.regions.contains(&"phase1".to_owned()));
    }

    #[test]
    fn blas_and_fft_are_wired_through_monitoring() {
        let run = run_cluster(&ClusterConfig::dirac(1, 1), |ctx| {
            let d = ctx.blas.cublas_alloc(16, 8).unwrap();
            ctx.blas
                .cublas_dgemm(
                    ipm_numlib::Transpose::N,
                    ipm_numlib::Transpose::N,
                    4,
                    4,
                    4,
                    1.0,
                    d,
                    4,
                    d,
                    4,
                    0.0,
                    d,
                    4,
                )
                .unwrap();
            let plan = ctx
                .fft
                .cufft_plan_1d(64, ipm_numlib::FftType::Z2Z, 1)
                .unwrap();
            let dd = ctx.cuda.cuda_malloc(64 * 16).unwrap();
            ctx.fft
                .cufft_exec_z2z(plan, dd, dd, ipm_numlib::FftDirection::Forward)
                .unwrap();
        });
        let p = &run.profiles[0];
        assert_eq!(p.count_of("cublasDgemm"), 1);
        assert_eq!(p.count_of("cufftExecZ2Z"), 1);
        // library-internal launches intercepted too
        assert!(p.count_of("cudaLaunch") >= 2);
    }

    #[test]
    fn period_for_budget_scales_and_clamps() {
        use std::time::Duration;
        // 50 µs sweep on a 1% budget → poll every 5 ms
        assert_eq!(
            period_for_budget(Duration::from_micros(50), 0.01),
            Duration::from_millis(5)
        );
        // a free sweep still waits the minimum period
        assert_eq!(
            period_for_budget(Duration::ZERO, 0.01),
            Duration::from_millis(1)
        );
        // a pathological sweep is capped so the dashboard keeps moving
        assert_eq!(
            period_for_budget(Duration::from_secs(10), 0.01),
            Duration::from_secs(5)
        );
    }

    #[test]
    fn observer_auto_tunes_its_polling_period() {
        let cfg = ClusterConfig::dirac(2, 1)
            .with_ipm(IpmConfig::default().with_snapshot_budget(0.02))
            .with_command("tuned");
        let periods = Mutex::new(Vec::new());
        run_cluster_observed(
            &cfg,
            |ctx| {
                for _ in 0..20 {
                    let k = Kernel::timed("work", KernelCost::Fixed(0.01));
                    launch_kernel(
                        ctx.cuda.as_ref(),
                        &k,
                        LaunchConfig::simple(8u32, 32u32),
                        &[],
                    )
                    .unwrap();
                    ctx.cuda.cuda_thread_synchronize().unwrap();
                }
            },
            |obs| {
                // before any sweep there is no measurement to tune from
                assert!(obs.auto_period().is_none());
                while !obs.is_done() {
                    obs.sample();
                    // warm-up fallback until the first sweep lands
                    let period = obs
                        .auto_period()
                        .unwrap_or(std::time::Duration::from_millis(1));
                    periods.lock().unwrap().push(period);
                    std::thread::sleep(period);
                }
            },
        );
        let periods = periods.into_inner().unwrap();
        assert!(!periods.is_empty(), "observer never polled");
        // once a sweep was measured every derived period respects the bounds
        assert!(periods
            .iter()
            .all(|p| (MIN_SAMPLE_PERIOD..=MAX_SAMPLE_PERIOD).contains(p)));
    }
}
