//! CUDA-SDK-style benchmarks — the workloads of the paper's Table I.
//!
//! Table I validates IPM's event-based kernel timing against the CUDA
//! profiler over eight SDK samples, each characterized by its kernel
//! invocation count and aggregate GPU time. This module reproduces the
//! *observable structure* of those samples: the same names, the same
//! invocation counts, per-invocation kernel durations matching the
//! published totals, and the same execution style (`concurrentKernels`
//! really uses multiple streams; `scan` really launches 3300 short
//! kernels).

use ipm_gpu_sim::{
    launch_kernel, CudaApi, CudaResult, Kernel, KernelArg, KernelCost, LaunchConfig, StreamId,
};

/// One Table I workload.
#[derive(Clone, Debug)]
pub struct SdkBenchmark {
    /// Benchmark name as listed in Table I.
    pub name: &'static str,
    /// Kernel symbol launched.
    pub kernel: &'static str,
    /// Number of kernel invocations (Table I column 2).
    pub invocations: usize,
    /// Per-invocation device time, seconds (derived from Table I's CUDA
    /// profiler totals).
    pub kernel_seconds: f64,
    /// Streams used (1 except for `concurrentKernels`).
    pub streams: usize,
    /// Launch grid (blocks, threads).
    pub shape: (u32, u32),
    /// Fetch (and validate) results every this many launches, like the
    /// real SDK samples do. Keeps IPM's kernel timing table drained.
    pub d2h_every: usize,
}

/// The Table I suite. Per-invocation durations are the paper's profiler
/// totals divided by the invocation counts.
pub fn table1_suite() -> Vec<SdkBenchmark> {
    let bench = |name, kernel, invocations: usize, total: f64, streams, shape| SdkBenchmark {
        name,
        kernel,
        invocations,
        kernel_seconds: total / invocations as f64,
        streams,
        shape,
        d2h_every: 64,
    };
    vec![
        bench(
            "BlackScholes",
            "BlackScholesGPU",
            512,
            2.540677,
            1,
            (480, 128),
        ),
        bench(
            "FDTD3d",
            "FiniteDifferencesKernel",
            5,
            0.101354,
            1,
            (576, 256),
        ),
        bench("MersenneTwister", "RandomGPU", 202, 1.126475, 1, (32, 128)),
        bench(
            "MonteCarlo",
            "MonteCarloOneBlockPerOption",
            2,
            0.001988,
            1,
            (256, 256),
        ),
        bench("concurrentKernels", "mykernel", 9, 0.613755, 8, (1, 1)),
        bench(
            "eigenvalues",
            "bisectKernelLarge",
            300,
            5.328266,
            1,
            (86, 256),
        ),
        bench(
            "quasirandomGenerator",
            "quasirandomGeneratorKernel",
            42,
            0.039536,
            1,
            (128, 128),
        ),
        bench("scan", "scan_best_kernel", 3300, 1.412912, 1, (64, 256)),
    ]
}

impl SdkBenchmark {
    /// Run the benchmark against a CUDA API (bare or monitored). Kernels
    /// are spread round-robin over the benchmark's streams; a final D2H
    /// transfer per stream drains the device (and gives IPM its lazy KTT
    /// sweep point), as the real samples do when fetching results.
    pub fn run(&self, api: &dyn CudaApi) -> CudaResult<()> {
        let buf = api.cuda_malloc(1 << 16)?;
        let streams: Vec<StreamId> = if self.streams <= 1 {
            vec![StreamId::DEFAULT]
        } else {
            (0..self.streams)
                .map(|_| api.cuda_stream_create())
                .collect::<CudaResult<_>>()?
        };
        let kernel = Kernel::timed(self.kernel, KernelCost::Fixed(self.kernel_seconds));
        let (grid, block) = self.shape;
        let mut probe = vec![0u8; 256];
        for i in 0..self.invocations {
            let stream = streams[i % streams.len()];
            launch_kernel(
                api,
                &kernel,
                LaunchConfig::simple(grid, block).on_stream(stream),
                &[KernelArg::Ptr(buf), KernelArg::I32(i as i32)],
            )?;
            // periodic validation fetch, as the real samples do
            if (i + 1) % self.d2h_every == 0 {
                api.cuda_memcpy_d2h(&mut probe, buf)?;
            }
        }
        // fetch "results": one sync D2H — the KTT sweep point
        let mut out = vec![0u8; 1 << 16];
        for &s in &streams {
            if s != StreamId::DEFAULT {
                api.cuda_stream_synchronize(s)?;
            }
        }
        api.cuda_memcpy_d2h(&mut out, buf)?;
        for &s in &streams {
            if s != StreamId::DEFAULT {
                api.cuda_stream_destroy(s)?;
            }
        }
        api.cuda_free(buf)?;
        Ok(())
    }

    /// The paper's profiler-total for this benchmark (seconds).
    pub fn paper_total(&self) -> f64 {
        self.kernel_seconds * self.invocations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_gpu_sim::{GpuConfig, GpuRuntime};

    #[test]
    fn suite_matches_table1_metadata() {
        let suite = table1_suite();
        assert_eq!(suite.len(), 8);
        let scan = suite.iter().find(|b| b.name == "scan").unwrap();
        assert_eq!(scan.invocations, 3300);
        assert!((scan.paper_total() - 1.412912).abs() < 1e-9);
        let ck = suite
            .iter()
            .find(|b| b.name == "concurrentKernels")
            .unwrap();
        assert_eq!(ck.streams, 8);
    }

    #[test]
    fn profiler_sees_exact_invocation_counts_and_times() {
        let rt = GpuRuntime::single(
            GpuConfig::dirac_node()
                .with_context_init(0.0)
                .with_profiler(),
        );
        let bench = &table1_suite()[3]; // MonteCarlo: 2 invocations, fast
        bench.run(&rt).unwrap();
        rt.with_profiler(|p| {
            assert_eq!(p.kernel_invocations(bench.kernel), 2);
            let total = p.kernel_time_total(bench.kernel);
            assert!((total - bench.paper_total()).abs() < 1e-6, "total {total}");
        });
    }

    #[test]
    fn concurrent_kernels_overlap_across_streams() {
        let rt = GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0));
        let ck = table1_suite()
            .into_iter()
            .find(|b| b.name == "concurrentKernels")
            .unwrap();
        ck.run(&rt).unwrap();
        let wall = rt.clock().now();
        // 9 kernels of 68 ms over 8 streams: ~2 serial waves ≈ 0.14 s,
        // far less than the 0.61 s serial total
        assert!(wall < 0.31, "streams did not overlap: {wall}");
    }

    #[test]
    fn serial_benchmarks_take_their_paper_total() {
        let rt = GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0));
        let mc = &table1_suite()[3];
        mc.run(&rt).unwrap();
        assert!(rt.clock().now() >= mc.paper_total());
    }
}
