//! # ipm-apps
//!
//! Workloads for the IPM reproduction's evaluation — the applications the
//! paper profiles, rebuilt over the simulated substrates:
//!
//! * [`cluster`] — the Dirac-like cluster harness: MPI ranks as threads,
//!   one GPU per node, IPM facades installed per rank.
//! * [`square`] — the Fig. 3 microbenchmark (the Figs. 4–6 profiles).
//! * [`sdk`] — the eight CUDA-SDK-style samples of Table I.
//! * [`hpl`] — the CUDA-accelerated Linpack of Figs. 8 and 9.
//! * [`paratec`] — the plane-wave DFT code of Fig. 10 (host MKL vs
//!   thunking CUBLAS).
//! * [`amber`] — the PMEMD-like molecular dynamics code of Fig. 11.

pub mod amber;
pub mod cluster;
pub mod hpl;
pub mod paratec;
pub mod sdk;
pub mod square;

pub use amber::{run_amber, AmberConfig, AmberResult};
pub use cluster::{
    run_cluster, run_cluster_observed, ClusterConfig, ClusterObserver, ClusterRun, RankCtx,
};
pub use hpl::{run_hpl, HplConfig, HplResult};
pub use paratec::{run_paratec, BlasBackend, ParatecConfig, ParatecResult};
pub use sdk::{table1_suite, SdkBenchmark};
pub use square::{run_square, SquareConfig};
